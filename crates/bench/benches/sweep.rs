//! The fast-path sweep engine benchmark: how much host wall-clock the
//! timing-only executor, the cost cache, program-template interning and
//! bound pruning save on a Fig. 8-style tuning sweep. Criterion group
//! `sweep` covers the interesting corners (execution Full vs TimingOnly,
//! tuning cold vs warm cache, program build cold vs templated); a summary
//! with the headline speedups is written to `BENCH_sweep.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use han_colls::stack::{build_coll, time_coll, Coll};
use han_colls::{MpiStack, TemplateStore};
use han_core::{Han, HanConfig};
use han_machine::{dgx_like, mini, Machine, RailPolicy};
use han_mpi::{execute, ExecMode, ExecOpts, Program};
use han_sim::Time;
use han_tuner::{
    tune_with_cache, tune_with_opts, CostCache, DeltaSim, SearchSpace, Strategy, TuneOpts,
};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Sizes in one template class for the 256 KB-segment Bcast below: same
/// HAN segment count (`u = 16`) and same shared-memory fragment count of
/// the remainder segment, so the second build learns a template the third
/// size can re-stamp.
const TPL_M1: u64 = (4 << 20) - 4096;
const TPL_M2: u64 = (4 << 20) - 2048;
const TPL_M3: u64 = 4 << 20;

fn sweep_space() -> SearchSpace {
    let mut space = SearchSpace::standard();
    space.msg_sizes = vec![64 * 1024, 512 * 1024, 4 << 20];
    space.seg_sizes = vec![64 * 1024, 256 * 1024];
    space
}

/// The fine-grained end of a tuning-table sweep: thirty-two message
/// sizes packed inside one segment-count class (512 B steps below
/// 4 MiB, so both segment sizes keep their `u` and most sizes keep the
/// shared-memory fragment count of the remainder). Adjacent candidates
/// share DAG structure and diverge only in the remainder segment's
/// scalars — the regime delta re-simulation targets.
fn delta_space() -> SearchSpace {
    let mut space = SearchSpace::standard();
    space.msg_sizes = (0..32u64).rev().map(|k| (4 << 20) - k * 512).collect();
    space.seg_sizes = vec![64 * 1024, 256 * 1024];
    space
}

fn bench_sweep(c: &mut Criterion) {
    let preset = mini(4, 4);
    let space = sweep_space();
    let colls = [Coll::Bcast, Coll::Allreduce];
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);

    // Execution modes: one 4 MB bcast, payload-free vs full data movement.
    let han = Han::with_config(HanConfig::default().with_fs(256 * 1024));
    let prog = build_coll(&han, &preset, Coll::Bcast, 4 << 20, 0).expect("bcast");
    let p2p = han.flavor().p2p();
    let mut machine = Machine::from_preset(&preset);
    group.bench_function("exec_timing_only_4M", |b| {
        let opts = ExecOpts::with_mode(p2p, ExecMode::TimingOnly);
        b.iter(|| black_box(execute(&mut machine, &prog, &opts).makespan))
    });
    group.bench_function("exec_full_4M", |b| {
        let opts = ExecOpts::with_mode(p2p, ExecMode::Full);
        b.iter(|| black_box(execute(&mut machine, &prog, &opts).makespan))
    });

    // Program acquisition: a cold DAG build vs re-stamping an interned
    // template of the same shape class.
    group.bench_function("build_cold_4M", |b| {
        b.iter(|| black_box(build_coll(&han, &preset, Coll::Bcast, TPL_M3, 0).expect("bcast")))
    });
    let store = TemplateStore::new();
    store.build(&han, &preset, Coll::Bcast, TPL_M1, 0).unwrap();
    store.build(&han, &preset, Coll::Bcast, TPL_M2, 0).unwrap();
    let mut scratch = Program::default();
    group.bench_function("build_templated_4M", |b| {
        b.iter(|| {
            store
                .build_into(&han, &preset, Coll::Bcast, TPL_M3, 0, &mut scratch)
                .expect("bcast");
            black_box(&mut scratch);
        })
    });

    // Tuning sweeps: no cache vs a warm shared cache.
    group.bench_function("tune_exhaustive_cold", |b| {
        b.iter(|| {
            black_box(tune_with_cache(
                &preset,
                &space,
                &colls,
                Strategy::Exhaustive,
                None,
            ))
        })
    });
    let warm = Arc::new(CostCache::new(&preset));
    tune_with_cache(
        &preset,
        &space,
        &colls,
        Strategy::Exhaustive,
        Some(warm.clone()),
    );
    group.bench_function("tune_exhaustive_warm", |b| {
        b.iter(|| {
            black_box(tune_with_cache(
                &preset,
                &space,
                &colls,
                Strategy::Exhaustive,
                Some(warm.clone()),
            ))
        })
    });
    group.finish();
}

/// Best-of-N wall-clock for one closure, in seconds.
fn best_secs<T>(n: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..n)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Headline numbers, measured outside criterion so they can be written to
/// `BENCH_sweep.json` with explicit cold/warm pairing.
fn write_summary() {
    let preset = mini(4, 4);
    let space = sweep_space();
    let colls = [Coll::Bcast, Coll::Allreduce];

    let han = Han::with_config(HanConfig::default().with_fs(256 * 1024));
    let prog = build_coll(&han, &preset, Coll::Bcast, 4 << 20, 0).expect("bcast");
    let p2p = han.flavor().p2p();
    let mut machine = Machine::from_preset(&preset);
    let full = best_secs(5, || {
        execute(
            &mut machine,
            &prog,
            &ExecOpts::with_mode(p2p, ExecMode::Full),
        )
        .makespan
    });
    let timing = best_secs(5, || {
        execute(
            &mut machine,
            &prog,
            &ExecOpts::with_mode(p2p, ExecMode::TimingOnly),
        )
        .makespan
    });
    // Executor event throughput: pops per wall second of repeated warm
    // timing-only runs (iterated so a sub-millisecond run does not turn
    // scheduler jitter into a 30% swing on this key).
    let opts_timing = ExecOpts::with_mode(p2p, ExecMode::TimingOnly);
    let events = execute(&mut machine, &prog, &opts_timing).events;
    let events_per_sec = (0..5)
        .map(|_| {
            let iters = 20u64;
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(execute(&mut machine, &prog, &opts_timing).makespan);
            }
            (iters * events) as f64 / t0.elapsed().as_secs_f64()
        })
        .fold(0.0f64, f64::max);

    // Core-v3 engine hot-loop throughput: the calendar queue driven by
    // the executor's canonical steady-state event pattern — 16
    // rank-parallel ops, each popping its Ready event, pushing its Finish
    // at the same instant (the same-timestamp batch fast path), popping
    // that and pushing the successor's Ready one ~65 ns hop later (one
    // calendar bucket ahead). This isolates the SoA arena + batch-drain
    // loop the v3 rewrite targets; the machine-model arithmetic layered
    // on top of each event is what `events_per_sec` above carries.
    let events_per_sec_v3 = {
        use han_sim::EventQueue;
        let hop = Time::from_ps(1 << 16);
        let mut q: EventQueue<u32> = EventQueue::new();
        (0..8)
            .map(|_| {
                q.reset();
                for i in 0..16u32 {
                    q.push(Time::from_ps(0), i << 1);
                }
                let n = 2_000_000u64;
                let t0 = Instant::now();
                for _ in 0..n {
                    let (t, e) = q.pop().unwrap();
                    if e & 1 == 0 {
                        q.push(t, e | 1);
                    } else {
                        q.push(t + hop, e & !1);
                    }
                }
                black_box(q.now());
                n as f64 / t0.elapsed().as_secs_f64()
            })
            .fold(0.0f64, f64::max)
    };

    // Program acquisition: cold build vs re-stamping an interned template.
    let build_cold = best_secs(20, || {
        build_coll(&han, &preset, Coll::Bcast, TPL_M3, 0).expect("bcast")
    });
    let store = TemplateStore::new();
    store.build(&han, &preset, Coll::Bcast, TPL_M1, 0).unwrap();
    store.build(&han, &preset, Coll::Bcast, TPL_M2, 0).unwrap();
    let mut scratch = Program::default();
    let build_warm = best_secs(20, || {
        store
            .build_into(&han, &preset, Coll::Bcast, TPL_M3, 0, &mut scratch)
            .expect("bcast");
    });

    // Bound pruning: fraction of exhaustive candidates skipped.
    let pruned_run = tune_with_opts(
        &preset,
        &space,
        &colls,
        Strategy::Exhaustive,
        None,
        TuneOpts {
            prune: true,
            delta: true,
        },
    );
    let prune_ratio =
        pruned_run.pruned as f64 / (pruned_run.searches + pruned_run.pruned).max(1) as f64;

    let cold = best_secs(3, || {
        tune_with_cache(&preset, &space, &colls, Strategy::Exhaustive, None)
    });
    let cache = Arc::new(CostCache::new(&preset));
    tune_with_cache(
        &preset,
        &space,
        &colls,
        Strategy::Exhaustive,
        Some(cache.clone()),
    );
    let warm = best_secs(3, || {
        tune_with_cache(
            &preset,
            &space,
            &colls,
            Strategy::Exhaustive,
            Some(cache.clone()),
        )
    });

    // Heterogeneous machines: wall-clock of the same exhaustive sweep on
    // the DGX-like preset (per-level overrides + 4 striped NIC rails),
    // and the simulated speedup striping buys a bandwidth-bound bcast.
    let dgx = dgx_like(2, 4);
    let hetero_sweep = best_secs(3, || {
        tune_with_opts(
            &dgx,
            &space,
            &colls,
            Strategy::Exhaustive,
            None,
            TuneOpts {
                prune: true,
                delta: true,
            },
        )
    });
    // Delta re-simulation: the dense-grid Bcast table sweep, every
    // candidate timed plainly vs through checkpoint replay (results are
    // bit-identical; only wall-clock moves). Bcast is the delta showcase
    // — neighbouring sizes differ only in the remainder segment, so the
    // timelines agree until ~80% through. Allreduce re-chunks the whole
    // message per rank, every chunk's scalars move with `m`, and DeltaSim
    // correctly falls back to recording runs — it stays covered by the
    // equivalence tests, not by this headline. Measured on the 16-rank
    // mini preset, whose candidate programs are simulation-dominated
    // (~1.5K events each); the tiny 8-rank dgx programs above are
    // build-dominated and would only show the infrastructure floor. Only
    // simulation time is accumulated: template stamping builds each
    // candidate identically on both paths (and is scored separately by
    // template_reuse_speedup), so folding it in would only dilute the
    // ratio this key tracks.
    type SimFn<'a> = &'a mut dyn FnMut(&mut Machine, &Program, &ExecOpts, Option<u64>) -> Time;
    let dspace = delta_space();
    let dstore = TemplateStore::new();
    let dtopo = preset.topology;
    let mut dscratch = Program::default();
    let mut sweep_sim_secs = |sim: SimFn| {
        let mut total = 0.0f64;
        for &m in &dspace.msg_sizes {
            for cfg in dspace.configs_for(m, &dtopo, false) {
                let dhan = Han::with_config(cfg);
                let key = dstore
                    .build_into(&dhan, &preset, Coll::Bcast, m, 0, &mut dscratch)
                    .expect("delta-grid candidate");
                let opts = ExecOpts::timing(dhan.flavor().p2p());
                let t0 = Instant::now();
                black_box(sim(&mut machine, &dscratch, &opts, key));
                total += t0.elapsed().as_secs_f64();
            }
        }
        total
    };
    let sweep_full = (0..3)
        .map(|_| sweep_sim_secs(&mut |m, p, o, _| execute(m, p, o).makespan))
        .fold(f64::INFINITY, f64::min);
    let sweep_delta = (0..3)
        .map(|_| {
            let mut ds = DeltaSim::new();
            sweep_sim_secs(&mut |m, p, o, k| ds.time(m, p, o, k))
        })
        .fold(f64::INFINITY, f64::min);
    let delta_resim_speedup = sweep_full / sweep_delta;

    let t_striped = time_coll(&han, &dgx, Coll::Bcast, 4 << 20, 0).expect("striped bcast");
    let t_single = time_coll(
        &han,
        &dgx.with_rails(1, RailPolicy::Stripe),
        Coll::Bcast,
        4 << 20,
        0,
    )
    .expect("single-rail bcast");
    let rail_striping_speedup = t_single.as_ps() as f64 / t_striped.as_ps().max(1) as f64;

    let rows: Vec<(String, f64)> = vec![
        ("exec_full_4M_s".into(), full),
        ("exec_timing_only_4M_s".into(), timing),
        ("exec_mode_speedup".into(), full / timing),
        ("tune_exhaustive_cold_s".into(), cold),
        ("tune_exhaustive_warm_s".into(), warm),
        ("warm_cache_speedup".into(), cold / warm),
        ("build_cold_4M_s".into(), build_cold),
        ("build_templated_4M_s".into(), build_warm),
        ("template_reuse_speedup".into(), build_cold / build_warm),
        ("events_per_sec".into(), events_per_sec),
        ("events_per_sec_v3".into(), events_per_sec_v3),
        ("prune_ratio".into(), prune_ratio),
        ("hetero_sweep_s".into(), hetero_sweep),
        ("rail_striping_speedup".into(), rail_striping_speedup),
        ("sweep_full_resim_s".into(), sweep_full),
        ("sweep_delta_resim_s".into(), sweep_delta),
        ("delta_resim_speedup".into(), delta_resim_speedup),
    ];
    // cargo runs benches with cwd = the package dir; anchor the report at
    // the workspace root where the other results live.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    match serde_json::to_string_pretty(&rows) {
        Ok(text) => {
            if let Err(e) = std::fs::write(out, text) {
                eprintln!("[sweep] could not write BENCH_sweep.json: {e}");
            } else {
                println!(
                    "[sweep] exec speedup {:.2}x, warm-cache speedup {:.2}x, template \
                     speedup {:.2}x, {:.2}M events/s ({:.2}M steady-state), prune ratio \
                     {:.2}, hetero sweep {:.3}s, rail striping {:.2}x, delta resim \
                     {:.2}x -> BENCH_sweep.json",
                    full / timing,
                    cold / warm,
                    build_cold / build_warm,
                    events_per_sec / 1e6,
                    events_per_sec_v3 / 1e6,
                    prune_ratio,
                    hetero_sweep,
                    rail_striping_speedup,
                    delta_resim_speedup
                );
            }
        }
        Err(e) => eprintln!("[sweep] could not serialize summary: {e}"),
    }
}

fn bench_sweep_and_summarize(c: &mut Criterion) {
    bench_sweep(c);
    write_summary();
}

criterion_group!(benches, bench_sweep_and_summarize);
criterion_main!(benches);
