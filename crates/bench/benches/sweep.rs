//! The fast-path sweep engine benchmark: how much host wall-clock the
//! timing-only executor and the cost cache save on a Fig. 8-style tuning
//! sweep. Criterion group `sweep` covers the four interesting corners
//! (execution Full vs TimingOnly, tuning cold vs warm cache); a summary
//! with the headline speedups is written to `BENCH_sweep.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use han_colls::stack::{build_coll, Coll};
use han_colls::MpiStack;
use han_core::{Han, HanConfig};
use han_machine::{mini, Machine};
use han_mpi::{execute, ExecMode, ExecOpts};
use han_tuner::{tune_with_cache, CostCache, SearchSpace, Strategy};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn sweep_space() -> SearchSpace {
    let mut space = SearchSpace::standard();
    space.msg_sizes = vec![64 * 1024, 512 * 1024, 4 << 20];
    space.seg_sizes = vec![64 * 1024, 256 * 1024];
    space
}

fn bench_sweep(c: &mut Criterion) {
    let preset = mini(4, 4);
    let space = sweep_space();
    let colls = [Coll::Bcast, Coll::Allreduce];
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);

    // Execution modes: one 4 MB bcast, payload-free vs full data movement.
    let han = Han::with_config(HanConfig::default().with_fs(256 * 1024));
    let prog = build_coll(&han, &preset, Coll::Bcast, 4 << 20, 0).expect("bcast");
    let p2p = han.flavor().p2p();
    let mut machine = Machine::from_preset(&preset);
    group.bench_function("exec_timing_only_4M", |b| {
        let opts = ExecOpts::with_mode(p2p, ExecMode::TimingOnly);
        b.iter(|| black_box(execute(&mut machine, &prog, &opts).makespan))
    });
    group.bench_function("exec_full_4M", |b| {
        let opts = ExecOpts::with_mode(p2p, ExecMode::Full);
        b.iter(|| black_box(execute(&mut machine, &prog, &opts).makespan))
    });

    // Tuning sweeps: no cache vs a warm shared cache.
    group.bench_function("tune_exhaustive_cold", |b| {
        b.iter(|| {
            black_box(tune_with_cache(
                &preset,
                &space,
                &colls,
                Strategy::Exhaustive,
                None,
            ))
        })
    });
    let warm = Arc::new(CostCache::new(&preset));
    tune_with_cache(
        &preset,
        &space,
        &colls,
        Strategy::Exhaustive,
        Some(warm.clone()),
    );
    group.bench_function("tune_exhaustive_warm", |b| {
        b.iter(|| {
            black_box(tune_with_cache(
                &preset,
                &space,
                &colls,
                Strategy::Exhaustive,
                Some(warm.clone()),
            ))
        })
    });
    group.finish();
}

/// Best-of-N wall-clock for one closure, in seconds.
fn best_secs<T>(n: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..n)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Headline numbers, measured outside criterion so they can be written to
/// `BENCH_sweep.json` with explicit cold/warm pairing.
fn write_summary() {
    let preset = mini(4, 4);
    let space = sweep_space();
    let colls = [Coll::Bcast, Coll::Allreduce];

    let han = Han::with_config(HanConfig::default().with_fs(256 * 1024));
    let prog = build_coll(&han, &preset, Coll::Bcast, 4 << 20, 0).expect("bcast");
    let p2p = han.flavor().p2p();
    let mut machine = Machine::from_preset(&preset);
    let full = best_secs(5, || {
        execute(
            &mut machine,
            &prog,
            &ExecOpts::with_mode(p2p, ExecMode::Full),
        )
        .makespan
    });
    let timing = best_secs(5, || {
        execute(
            &mut machine,
            &prog,
            &ExecOpts::with_mode(p2p, ExecMode::TimingOnly),
        )
        .makespan
    });

    let cold = best_secs(3, || {
        tune_with_cache(&preset, &space, &colls, Strategy::Exhaustive, None)
    });
    let cache = Arc::new(CostCache::new(&preset));
    tune_with_cache(
        &preset,
        &space,
        &colls,
        Strategy::Exhaustive,
        Some(cache.clone()),
    );
    let warm = best_secs(3, || {
        tune_with_cache(
            &preset,
            &space,
            &colls,
            Strategy::Exhaustive,
            Some(cache.clone()),
        )
    });

    let rows: Vec<(String, f64)> = vec![
        ("exec_full_4M_s".into(), full),
        ("exec_timing_only_4M_s".into(), timing),
        ("exec_mode_speedup".into(), full / timing),
        ("tune_exhaustive_cold_s".into(), cold),
        ("tune_exhaustive_warm_s".into(), warm),
        ("warm_cache_speedup".into(), cold / warm),
    ];
    // cargo runs benches with cwd = the package dir; anchor the report at
    // the workspace root where the other results live.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    match serde_json::to_string_pretty(&rows) {
        Ok(text) => {
            if let Err(e) = std::fs::write(out, text) {
                eprintln!("[sweep] could not write BENCH_sweep.json: {e}");
            } else {
                println!(
                    "[sweep] exec speedup {:.2}x, warm-cache speedup {:.2}x -> BENCH_sweep.json",
                    full / timing,
                    cold / warm
                );
            }
        }
        Err(e) => eprintln!("[sweep] could not serialize summary: {e}"),
    }
}

fn bench_sweep_and_summarize(c: &mut Criterion) {
    bench_sweep(c);
    write_summary();
}

criterion_group!(benches, bench_sweep_and_summarize);
criterion_main!(benches);
