//! Exit-code gating for the `repro` and `hansim` binaries.
//!
//! Sweeps skip-and-report collectives a stack declines
//! ([`han_colls::stack::Unsupported`]) instead of panicking — correct for
//! exploratory runs, but silent in CI: a regression that makes a tuned
//! sweep skip work it used to do would still exit 0. The [`SkipGate`]
//! collects every skip a binary observes, subtracts the explicitly
//! expected ones, and turns the rest (plus any recorded hard failures,
//! e.g. guideline violations) into a nonzero exit code.

use han_colls::stack::Unsupported;
use std::sync::Mutex;

/// Exit code for "the run completed but reported unexpected skips or
/// failures" — distinct from `2` (bad CLI usage).
pub const GATE_EXIT_CODE: i32 = 3;

/// Collects unexpected [`Unsupported`] skips and other recorded failures.
#[derive(Debug, Default)]
pub struct SkipGate {
    /// `(stack name, collective name)` pairs that are allowed to skip.
    expected: Vec<(String, String)>,
    /// Everything that was not allowed.
    unexpected: Vec<String>,
    /// Clamped engine events are tolerated (explicit opt-in only).
    clamped_ok: bool,
}

impl SkipGate {
    pub const fn new() -> Self {
        SkipGate {
            expected: Vec::new(),
            unexpected: Vec::new(),
            clamped_ok: false,
        }
    }

    /// Register an expected skip: `stack` may decline `coll`.
    pub fn allow(&mut self, stack: &str, coll: &str) {
        self.expected.push((stack.to_string(), coll.to_string()));
    }

    /// Record one observed skip; returns `true` if it was unexpected.
    pub fn note(&mut self, skip: &Unsupported) -> bool {
        let expected = self
            .expected
            .iter()
            .any(|(s, c)| *s == skip.stack && c == skip.coll.name());
        if !expected {
            self.unexpected.push(skip.to_string());
        }
        !expected
    }

    /// Record a non-skip failure (e.g. guideline violations) that must
    /// also fail the run.
    pub fn fail(&mut self, reason: impl Into<String>) {
        self.unexpected.push(reason.into());
    }

    /// Opt in to clamped engine events (scenarios that deliberately
    /// schedule into the past, e.g. stress runs).
    pub fn allow_clamped(&mut self) {
        self.clamped_ok = true;
    }

    /// Record an engine's clamped-event count (`EngineStats::clamped`:
    /// events scheduled in the past and snapped to the current virtual
    /// time — a scheduling bug unless explicitly opted in). Returns
    /// `true` if the gate tripped.
    pub fn note_clamped(&mut self, context: &str, count: u64) -> bool {
        if count == 0 || self.clamped_ok {
            return false;
        }
        self.unexpected.push(format!(
            "{context}: {count} event(s) scheduled in the past were clamped \
             to the current virtual time (pass --allow-clamped to tolerate)"
        ));
        true
    }

    pub fn unexpected(&self) -> &[String] {
        &self.unexpected
    }

    /// `0` when clean, [`GATE_EXIT_CODE`] otherwise.
    pub fn exit_code(&self) -> i32 {
        if self.unexpected.is_empty() {
            0
        } else {
            GATE_EXIT_CODE
        }
    }
}

static GATE: Mutex<SkipGate> = Mutex::new(SkipGate::new());

/// Register an expected skip on the process-wide gate.
pub fn allow(stack: &str, coll: &str) {
    GATE.lock().unwrap().allow(stack, coll);
}

/// Record an observed skip on the process-wide gate; returns `true` if it
/// was unexpected.
pub fn note(skip: &Unsupported) -> bool {
    GATE.lock().unwrap().note(skip)
}

/// Record a non-skip failure on the process-wide gate.
pub fn fail(reason: impl Into<String>) {
    GATE.lock().unwrap().fail(reason)
}

/// Opt the process-wide gate in to clamped engine events.
pub fn allow_clamped() {
    GATE.lock().unwrap().allow_clamped()
}

/// Record a clamped-event count on the process-wide gate; returns `true`
/// if it tripped.
pub fn note_clamped(context: &str, count: u64) -> bool {
    GATE.lock().unwrap().note_clamped(context, count)
}

/// Print any unexpected entries to stderr and return the exit code the
/// binary must end with.
pub fn finish(binary: &str) -> i32 {
    let gate = GATE.lock().unwrap();
    for u in gate.unexpected() {
        eprintln!("[{binary}] UNEXPECTED: {u}");
    }
    gate.exit_code()
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_colls::stack::Coll;

    fn skip(stack: &str, coll: Coll) -> Unsupported {
        Unsupported {
            stack: stack.to_string(),
            coll,
        }
    }

    #[test]
    fn clean_gate_exits_zero() {
        let g = SkipGate::new();
        assert_eq!(g.exit_code(), 0);
        assert!(g.unexpected().is_empty());
    }

    #[test]
    fn unexpected_skip_trips_the_gate() {
        let mut g = SkipGate::new();
        assert!(g.note(&skip("tuned", Coll::Gather)));
        assert_eq!(g.exit_code(), GATE_EXIT_CODE);
        assert_eq!(g.unexpected().len(), 1);
        assert!(g.unexpected()[0].contains("tuned"));
    }

    #[test]
    fn allowed_skip_passes() {
        let mut g = SkipGate::new();
        g.allow("tuned", "gather");
        assert!(!g.note(&skip("tuned", Coll::Gather)));
        assert_eq!(g.exit_code(), 0);
        // The allowance is exact: a different collective still trips it.
        assert!(g.note(&skip("tuned", Coll::Scatter)));
        assert_eq!(g.exit_code(), GATE_EXIT_CODE);
    }

    #[test]
    fn recorded_failures_trip_the_gate() {
        let mut g = SkipGate::new();
        g.fail("3 guideline violations");
        assert_eq!(g.exit_code(), GATE_EXIT_CODE);
    }

    #[test]
    fn clamped_events_trip_the_gate() {
        let mut g = SkipGate::new();
        assert!(!g.note_clamped("engine", 0));
        assert_eq!(g.exit_code(), 0);
        assert!(g.note_clamped("engine", 7));
        assert_eq!(g.exit_code(), GATE_EXIT_CODE);
        assert!(g.unexpected()[0].contains("7 event(s)"));
    }

    #[test]
    fn clamped_opt_in_is_respected() {
        let mut g = SkipGate::new();
        g.allow_clamped();
        assert!(!g.note_clamped("engine", 7));
        assert_eq!(g.exit_code(), 0);
        // The opt-in is clamped-specific: skips still trip it.
        assert!(g.note(&skip("tuned", Coll::Gather)));
        assert_eq!(g.exit_code(), GATE_EXIT_CODE);
    }
}
