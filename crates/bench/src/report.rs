//! Plain-text tables and JSON persistence for the `repro` binary.

use han_sim::Time;
use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(line, "{c:>w$}  ");
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Human-friendly microseconds with adaptive precision.
pub fn us(t: Time) -> String {
    let v = t.as_us_f64();
    if v < 10.0 {
        format!("{v:.2}")
    } else if v < 1000.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.0}")
    }
}

/// Compact byte-size label (4, 1K, 2M, ...).
pub fn size_label(bytes: u64) -> String {
    han_core::config::human_size(bytes)
}

/// Persist a serializable result under `results/<name><suffix>.json`,
/// where the suffix comes from [`set_result_suffix`] (e.g. `_d3` for
/// three-level sweeps, so deep runs never clobber the two-level files).
pub fn save_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let suffix = RESULT_SUFFIX.lock().map(|s| s.clone()).unwrap_or_default();
    std::fs::write(
        dir.join(format!("{name}{suffix}.json")),
        serde_json::to_string_pretty(value).expect("serialize"),
    )
}

static RESULT_SUFFIX: std::sync::Mutex<String> = std::sync::Mutex::new(String::new());

/// Set a filename suffix appended to every subsequent [`save_json`] name.
pub fn set_result_suffix(suffix: &str) {
    if let Ok(mut s) = RESULT_SUFFIX.lock() {
        *s = suffix.to_string();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["size", "HAN", "tuned"]);
        t.row(vec!["4".into(), "1.23".into(), "5.6".into()]);
        t.row(vec!["128K".into(), "100".into(), "472".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("size"));
        assert!(lines[3].contains("128K"));
        // All data lines share the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic]
    fn column_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(Time::from_us(3)), "3.00");
        assert_eq!(us(Time::from_us(42)), "42.0");
        assert_eq!(us(Time::from_ms(5)), "5000");
        assert_eq!(size_label(64 * 1024), "64K");
    }
}
