//! Netpipe-style point-to-point bandwidth measurement (Fig. 11).
//!
//! "We measure the P2P performances of both Open MPI and Cray MPI using
//! Netpipe." A ping-pong between two ranks on different nodes: the one-way
//! time is half the round trip, and bandwidth is `bytes / one-way`.

use han_machine::{Flavor, Machine, MachinePreset};
use han_mpi::{execute, Comm, ExecOpts, ProgramBuilder};
use han_sim::Time;

/// One measurement point.
#[derive(Debug, Clone, Copy)]
pub struct NetpipeRow {
    pub bytes: u64,
    pub one_way: Time,
    /// Achieved bandwidth in bytes/second.
    pub bandwidth: f64,
}

/// Ping-pong `bytes` between rank 0 and the first rank of node 1 under the
/// given MPI flavour's P2P parameters.
pub fn ping_pong(preset: &MachinePreset, flavor: Flavor, bytes: u64) -> NetpipeRow {
    let n = preset.topology.world_size();
    let comm = Comm::world(n);
    let peer = comm.world_rank(preset.topology.ppn()); // node 1, local 0
    let mut b = ProgramBuilder::new(n);
    let (_, r1) = b.send_recv(0, peer, bytes, None, None, &[], &[]);
    b.send_recv(peer, 0, bytes, None, None, &[r1], &[]);
    let prog = b.build();
    let mut machine = Machine::from_preset(preset);
    let rep = execute(&mut machine, &prog, &ExecOpts::timing(flavor.p2p()));
    let one_way = rep.makespan / 2;
    NetpipeRow {
        bytes,
        one_way,
        bandwidth: bytes as f64 / one_way.as_secs_f64().max(1e-12),
    }
}

/// Sweep the Netpipe curve over `sizes`.
pub fn netpipe_sweep(preset: &MachinePreset, flavor: Flavor, sizes: &[u64]) -> Vec<NetpipeRow> {
    sizes
        .iter()
        .map(|&bytes| ping_pong(preset, flavor, bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_machine::shaheen2;

    #[test]
    fn bandwidth_increases_then_saturates() {
        let preset = shaheen2(2);
        let rows = netpipe_sweep(
            &preset,
            Flavor::OpenMpi,
            &[512, 8 * 1024, 256 * 1024, 8 << 20, 64 << 20],
        );
        // Monotone non-decreasing bandwidth with size (no mid-size cliff
        // bigger than the protocol switch allows).
        assert!(rows[0].bandwidth < rows.last().unwrap().bandwidth);
        // Peak approaches (but cannot exceed) the NIC rate.
        let peak = rows.last().unwrap().bandwidth;
        assert!(peak <= preset.net.nic_bw * 1.01);
        assert!(peak > preset.net.nic_bw * 0.8, "peak {peak:.3e}");
    }

    #[test]
    fn cray_beats_openmpi_in_the_midrange_same_peak() {
        // The Fig. 11 shape: Cray MPI wins 512B–2MB (especially
        // 16KB–512KB); both reach the same peak.
        let preset = shaheen2(2);
        for bytes in [16 * 1024u64, 64 * 1024, 128 * 1024] {
            let ompi = ping_pong(&preset, Flavor::OpenMpi, bytes);
            let cray = ping_pong(&preset, Flavor::CrayMpi, bytes);
            assert!(
                cray.bandwidth > ompi.bandwidth * 1.1,
                "{bytes}B: cray {:.2e} vs ompi {:.2e}",
                cray.bandwidth,
                ompi.bandwidth
            );
        }
        // The gap narrows but persists through 512 KB.
        for bytes in [256 * 1024u64, 512 * 1024] {
            let ompi = ping_pong(&preset, Flavor::OpenMpi, bytes);
            let cray = ping_pong(&preset, Flavor::CrayMpi, bytes);
            assert!(cray.bandwidth > ompi.bandwidth, "{bytes}B");
        }
        let ompi = ping_pong(&preset, Flavor::OpenMpi, 64 << 20);
        let cray = ping_pong(&preset, Flavor::CrayMpi, 64 << 20);
        let ratio = cray.bandwidth / ompi.bandwidth;
        assert!(
            (0.97..1.03).contains(&ratio),
            "peaks must match: ratio {ratio:.3}"
        );
    }

    #[test]
    fn latency_floor_for_tiny_messages() {
        let preset = shaheen2(2);
        let row = ping_pong(&preset, Flavor::OpenMpi, 1);
        // One-way must be at least the wire latency.
        assert!(row.one_way >= preset.net.latency);
    }
}
