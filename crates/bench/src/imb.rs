//! IMB-style collective benchmarking.
//!
//! The paper reports IMB numbers — the maximum completion time across
//! processes — over "small messages up to 128K … and large messages up to
//! 128MB". This harness sweeps any message-size list over any set of MPI
//! stacks on one simulated machine.

use han_colls::stack::{time_coll_on, Coll, MpiStack};
use han_machine::{Machine, MachinePreset};
use han_sim::Time;

/// One sweep row: a message size and each stack's latency. A stack that
/// does not implement the collective contributes `None` — the sweep skips
/// it and keeps the row, rather than aborting the whole comparison.
#[derive(Debug, Clone)]
pub struct ImbRow {
    pub bytes: u64,
    /// `(stack name, latency)` in the order the stacks were given;
    /// `None` marks an unsupported collective for that stack.
    pub results: Vec<(String, Option<Time>)>,
}

impl ImbRow {
    /// Latency of the named stack (`None` if absent or unsupported).
    pub fn of(&self, name: &str) -> Option<Time> {
        self.results
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, t)| *t)
    }

    /// Speedup of `a` over `b` (>1 means `a` is faster).
    pub fn speedup(&self, a: &str, b: &str) -> Option<f64> {
        let (ta, tb) = (self.of(a)?, self.of(b)?);
        Some(tb.as_ps() as f64 / ta.as_ps().max(1) as f64)
    }
}

/// Sweep `coll` over `sizes` for every stack.
pub fn imb_sweep(
    stacks: &[&dyn MpiStack],
    preset: &MachinePreset,
    coll: Coll,
    sizes: &[u64],
) -> Vec<ImbRow> {
    let mut machine = Machine::from_preset(preset);
    sizes
        .iter()
        .map(|&bytes| ImbRow {
            bytes,
            results: stacks
                .iter()
                .map(|s| {
                    (
                        s.name(),
                        time_coll_on(*s, &mut machine, preset, coll, bytes, 0).ok(),
                    )
                })
                .collect(),
        })
        .collect()
}

/// The paper's "small" message range: 4 B – 128 KB.
pub fn small_sizes() -> Vec<u64> {
    crate::sizes(4, 128 * 1024)
}

/// The paper's "large" message range: 256 KB – 128 MB.
pub fn large_sizes() -> Vec<u64> {
    crate::sizes(256 * 1024, 128 << 20)
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_colls::TunedOpenMpi;
    use han_core::{Han, HanConfig};
    use han_machine::mini;

    #[test]
    fn sweep_shape_and_monotonicity() {
        let preset = mini(2, 4);
        let han = Han::with_config(HanConfig::default());
        let stacks: [&dyn MpiStack; 2] = [&han, &TunedOpenMpi];
        let rows = imb_sweep(&stacks, &preset, Coll::Bcast, &[1024, 64 * 1024, 1 << 20]);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.results.len(), 2);
            assert!(row.of("HAN").unwrap() > Time::ZERO);
        }
        // Latency grows with message size for every stack.
        for name in ["HAN", "default Open MPI"] {
            let ts: Vec<Time> = rows.iter().map(|r| r.of(name).unwrap()).collect();
            assert!(ts.windows(2).all(|w| w[0] < w[1]), "{name} not monotone");
        }
    }

    #[test]
    fn speedup_direction() {
        let row = ImbRow {
            bytes: 8,
            results: vec![
                ("A".into(), Some(Time::from_us(10))),
                ("B".into(), Some(Time::from_us(20))),
                ("C-unsupported".into(), None),
            ],
        };
        assert_eq!(row.speedup("A", "B"), Some(2.0));
        assert_eq!(row.speedup("B", "A"), Some(0.5));
        assert_eq!(row.speedup("A", "C"), None);
        // An unsupported stack reads as absent, never as a zero latency.
        assert_eq!(row.of("C-unsupported"), None);
        assert_eq!(row.speedup("A", "C-unsupported"), None);
    }

    #[test]
    fn size_ranges_match_paper() {
        assert_eq!(small_sizes().first(), Some(&4));
        assert_eq!(small_sizes().last(), Some(&(128 * 1024)));
        assert_eq!(large_sizes().last(), Some(&(128 << 20)));
    }
}
