//! # han-bench — measurement harnesses and paper-figure regeneration
//!
//! * [`imb`] — an Intel-MPI-Benchmarks-style sweep: collective latency
//!   (max across ranks) over a message-size range, for any set of
//!   [`han_colls::MpiStack`]s. Drives Figs. 10, 12, 13, 14.
//! * [`netpipe`] — a Netpipe-style point-to-point bandwidth sweep
//!   (Fig. 11).
//! * [`report`] — plain-text table rendering and JSON result persistence
//!   shared by the `repro` binary.
//! * [`gate`] — exit-code gating: unexpected `Unsupported` skips and
//!   guideline violations turn into a nonzero exit for CI.
//!
//! The `repro` binary (`cargo run -p han-bench --release --bin repro -- <fig>`)
//! regenerates every table and figure of the paper's evaluation; see
//! `EXPERIMENTS.md` for the recorded outputs.

pub mod gate;
pub mod imb;
pub mod netpipe;
pub mod report;

pub use imb::{imb_sweep, ImbRow};
pub use netpipe::{netpipe_sweep, NetpipeRow};
pub use report::Table;

/// Power-of-two message sizes from `lo` to `hi` inclusive (the IMB
/// convention the paper's x-axes use).
pub fn sizes(lo: u64, hi: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut x = lo;
    while x <= hi {
        v.push(x);
        x *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    #[test]
    fn sizes_are_powers_of_two() {
        assert_eq!(crate::sizes(4, 32), vec![4, 8, 16, 32]);
        assert!(crate::sizes(8, 4).is_empty());
    }
}
