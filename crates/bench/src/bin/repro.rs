//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p han-bench --release --bin repro -- <what> [--scale mini|paper]
//! ```
//!
//! `<what>` ∈ `fig2 fig3 fig4 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//! fig14 fig15 table3 ablation-pipeline ablation-irib ablation-models
//! verify synth hetero all`.
//!
//! `synth` runs schedule synthesis beyond the Table-II menu (han-synth)
//! on the small presets, re-executes every emitted Pareto-front point
//! through the full-payload correctness oracle, and writes
//! `results/synth.json`; any oracle failure, unexpected skip, or a run
//! with zero strict synth-beats-menu wins exits with code 3.
//!
//! `verify` runs the `han-verify` performance-guideline catalog over the
//! mini / mini3 / socketized presets plus the heterogeneous multi-rail
//! `dgx_like` / `gpu_hier` machines and writes `results/verify.json`;
//! any guideline violation (or any unexpected `Unsupported` skip in a
//! sweep) makes the process exit with code 3, which CI gates on.
//!
//! `--scale paper` (default) uses the paper's machine shapes (Shaheen II:
//! 128×32 = 4096 ranks; Stampede2: 32×48 = 1536; tuning: 64×12 = 768).
//! `--scale mini` shrinks every experiment for quick smoke runs.
//!
//! `--cache mem` (default) shares a [`han_tuner::CostCache`] across the
//! strategies and collectives of one invocation; `--cache disk`
//! additionally persists it under `results/cache/` so repeated
//! invocations warm-start; `--cache off` disables memoization. Virtual
//! times are identical in all three modes — only wall-clock changes.
//!
//! `--no-prune` disables the analytic lower-bound pruning of exhaustive
//! sweeps (Fig. 8). Pruning is on by default and never changes the winner
//! table — only how many candidates are simulated; Fig. 9 always runs the
//! exhaustive sweep unpruned because it needs the full sample
//! distribution (best/median/average), not just the winners.
//!
//! `--no-delta` disables delta re-simulation of exhaustive sweeps
//! (replaying the shared event prefix of structurally identical
//! candidates from a checkpoint). Like pruning it never changes any
//! result — delta replay is bit-identical by construction — only
//! wall-clock.
//!
//! `--levels 3` runs every experiment on the three-level (socketized)
//! forms of the machines — `[nodes, sockets, cores]` with a cross-socket
//! bus derating — instead of the paper's flat two-level shapes. The
//! hierarchy actually in use is reported up front via
//! [`han_machine::MachinePreset::level_params`].
//!
//! `hetero` runs the heterogeneous depth-scaling experiment (HiCCL-style
//! growing GPU hierarchies plus a multi-rail striping probe) and writes
//! `results/hetero.json`; non-monotone speedups or a striping speedup
//! ≤ 1 exit with code 3.
//!
//! All timings are **virtual (simulated) seconds**; the goal is shape
//! fidelity (who wins, by what factor, where the crossovers are), not the
//! testbeds' absolute microseconds. See `EXPERIMENTS.md`.

use han_bench::report::{save_json, size_label, us, Table};
use han_bench::{gate, imb_sweep, netpipe_sweep, sizes};
use han_colls::stack::{time_coll, time_coll_on, Coll, MpiStack};
use han_colls::{InterAlg, InterModule, IntraModule, TunedOpenMpi, VendorMpi};
use han_core::task::TaskSpec;
use han_core::{Han, HanConfig};
use han_machine::{shaheen2_ppn, socketize, stampede2_ppn, Flavor, Machine, MachinePreset};
use han_sim::{Summary, Time};
use han_tuner::{
    tune, tune_with_opts, CostCache, LookupTable, SearchSpace, Strategy, TaskBench, TuneOpts,
};
use std::sync::Arc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scale {
    Paper,
    Mini,
}

/// Where simulated task/collective costs are memoized (see `han_tuner::cache`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheMode {
    /// No memoization (the pre-cache behaviour).
    Off,
    /// One shared in-memory cache per invocation.
    Mem,
    /// In-memory cache, loaded from / saved to `results/cache/`.
    Disk,
}

const CACHE_DIR: &str = "results/cache";

struct Cfg {
    scale: Scale,
    cache: CacheMode,
    /// Hierarchy depth: 2 = the paper's flat node/rank machines, 3 = the
    /// socketized `[nodes, sockets, cores]` forms.
    levels: usize,
    /// Bound-prune exhaustive sweeps (`--no-prune` turns this off).
    prune: bool,
    /// Delta re-simulation of exhaustive sweeps (`--no-delta` turns this
    /// off). Bit-identical either way — only wall-clock changes.
    delta: bool,
}

impl Cfg {
    fn cost_cache(&self, preset: &MachinePreset) -> Option<Arc<CostCache>> {
        match self.cache {
            CacheMode::Off => None,
            CacheMode::Mem => Some(Arc::new(CostCache::new(preset))),
            CacheMode::Disk => Some(Arc::new(CostCache::load_or_new(
                std::path::Path::new(CACHE_DIR),
                preset,
            ))),
        }
    }

    fn persist_cache(&self, cache: Option<&Arc<CostCache>>) {
        if self.cache == CacheMode::Disk {
            if let Some(c) = cache {
                if let Err(e) = c.save_under(std::path::Path::new(CACHE_DIR)) {
                    eprintln!("[repro] failed to persist cost cache: {e}");
                }
            }
        }
    }

    /// Expose a preset at the requested hierarchy depth: depth 2 returns
    /// it untouched; depth 3 splits each node into two shared-memory
    /// domains with a QPI-like cross-socket derating.
    fn deepen(&self, m: MachinePreset) -> MachinePreset {
        match self.levels {
            3 => socketize(m, 2, 1.6),
            _ => m,
        }
    }

    fn shaheen(&self) -> MachinePreset {
        self.deepen(match self.scale {
            Scale::Paper => shaheen2_ppn(128, 32), // 4096 procs (Figs. 10/13)
            Scale::Mini => shaheen2_ppn(8, 8),
        })
    }

    fn stampede(&self) -> MachinePreset {
        self.deepen(match self.scale {
            Scale::Paper => stampede2_ppn(32, 48), // 1536 procs (Figs. 12/14)
            Scale::Mini => stampede2_ppn(4, 8),
        })
    }

    fn tuning(&self) -> MachinePreset {
        self.deepen(match self.scale {
            Scale::Paper => shaheen2_ppn(64, 12), // Figs. 4/8/9
            Scale::Mini => shaheen2_ppn(8, 4),
        })
    }

    fn max_msg(&self) -> u64 {
        match self.scale {
            Scale::Paper => 128 << 20,
            Scale::Mini => 4 << 20,
        }
    }

    fn validation_msg(&self) -> u64 {
        match self.scale {
            Scale::Paper => 4 << 20, // Figs. 4/7 use 4 MB
            Scale::Mini => 1 << 20,
        }
    }
}

/// The (imod, algorithm) combinations the paper's task figures sweep.
fn inter_combos() -> Vec<(InterModule, InterAlg, &'static str)> {
    vec![
        (InterModule::Libnbc, InterAlg::Binomial, "libnbc"),
        (InterModule::Adapt, InterAlg::Chain, "adapt/chain"),
        (InterModule::Adapt, InterAlg::Binary, "adapt/binary"),
        (InterModule::Adapt, InterAlg::Binomial, "adapt/binomial"),
    ]
}

fn combo_cfg(imod: InterModule, alg: InterAlg, smod: IntraModule, fs: u64) -> HanConfig {
    HanConfig {
        fs,
        imod,
        smod,
        ibalg: alg,
        iralg: alg,
        ibs: None,
        irs: None,
        deep: [None; han_core::MAX_DEEP],
        route: None,
    }
}

/// Tune (or load a cached) lookup table for a preset via the task-based
/// strategy — how HAN is configured in every end-to-end figure. Tables
/// always cover both collectives over the full 4 B – 128 MB range so the
/// cache is valid for every figure that shares the machine.
fn tuned_table(preset: &MachinePreset, label: &str) -> LookupTable {
    // Three-level machines tune to their own table files; two-level paths
    // are unchanged so existing caches stay warm.
    let file = if preset.topology.depth() > 2 {
        format!("table_{label}_d{}.json", preset.topology.depth())
    } else {
        format!("table_{label}.json")
    };
    let path = std::path::Path::new("results").join(file);
    let colls = [Coll::Bcast, Coll::Allreduce];
    if let Ok(t) = LookupTable::load(&path) {
        let complete = colls
            .iter()
            .all(|&c| t.sampled_sizes(c).last().copied().unwrap_or(0) >= 128 << 20);
        if t.levels == preset.topology.levels() && complete {
            return t;
        }
    }
    let mut space = SearchSpace::standard();
    space.msg_sizes = sizes(4, 128 << 20);
    let result = tune(preset, &space, &colls, Strategy::TaskBasedHeuristic);
    std::fs::create_dir_all("results").ok();
    result.table.save(&path).ok();
    result.table
}

fn han_for(preset: &MachinePreset, label: &str) -> Han {
    Han::tuned(Arc::new(tuned_table(preset, label)))
}

// ---------------------------------------------------------------- figures

/// Fig. 2: cost of tasks ib, sb, ib∥sb and sbib (with ib(0) start skew)
/// on each node leader, 64 KB segments, 6 nodes, rank 0 as root.
fn fig2(_cfg: &Cfg) {
    println!("## Fig. 2 — cost of tasks ib, sb, ib||sb, sbib per node leader");
    println!("   (64KB segments, 6 nodes x 12 ranks, root 0; times in us)\n");
    let preset = shaheen2_ppn(6, 12);
    let seg = 64 * 1024;
    let mut out = Vec::new();
    for smod in [IntraModule::Sm] {
        for (imod, alg, name) in inter_combos() {
            let hc = combo_cfg(imod, alg, smod, seg);
            let mut tb = TaskBench::new(&preset);
            let ib = tb.first_cost(&hc, TaskSpec::IB, seg);
            let sb = tb.first_cost(&hc, TaskSpec::SB, seg);
            let concurrent = tb.first_cost(&hc, TaskSpec::SBIB, seg);
            // sbib with delayed participation = occurrence 1 after ib(0).
            let trace = tb.occurrence_trace(&hc, &[TaskSpec::IB], TaskSpec::SBIB, seg, 1);
            let sbib = &trace[0];
            let mut t = Table::new(&["leader", "ib(0)", "sb(0)", "ib||sb", "sbib(1)"]);
            for l in 0..preset.topology.nodes() {
                t.row(vec![
                    l.to_string(),
                    us(ib[l]),
                    us(sb[l]),
                    us(concurrent[l]),
                    us(sbib[l]),
                ]);
            }
            println!("### {name} + {smod}\n{}", t.render());
            out.push((
                name.to_string(),
                ib.iter().map(|t| t.as_ps()).collect::<Vec<_>>(),
                sbib.iter().map(|t| t.as_ps()).collect::<Vec<_>>(),
            ));
        }
    }
    save_json("fig2", &out).ok();
}

/// Fig. 3: cost of sbib(i), i = 1..8, on one node leader — the
/// stabilization trend that justifies using sbib(s).
fn fig3(cfg: &Cfg) {
    println!("## Fig. 3 — cost of sbib(i) on node leader 2 (stabilization)\n");
    let preset = cfg.tuning();
    let leader = 2.min(preset.topology.nodes() - 1);
    let mut out = Vec::new();
    for (imod, alg, name) in inter_combos() {
        for seg in [64 * 1024u64, 512 * 1024] {
            let hc = combo_cfg(imod, alg, IntraModule::Sm, seg);
            let mut tb = TaskBench::new(&preset).with_max_occurrences(8);
            let trace = tb.occurrence_trace(&hc, &[TaskSpec::IB], TaskSpec::SBIB, seg, 8);
            let series: Vec<Time> = trace.iter().map(|occ| occ[leader]).collect();
            let cells: Vec<String> = series.iter().map(|t| us(*t)).collect();
            println!(
                "{name:>16} seg={:>5}:  {}",
                size_label(seg),
                cells.join("  ")
            );
            out.push((
                name.to_string(),
                seg,
                series.iter().map(|t| t.as_ps()).collect::<Vec<_>>(),
            ));
        }
    }
    println!("\n(columns are sbib(1) .. sbib(8); values stabilize after the first few)\n");
    save_json("fig3", &out).ok();
}

/// Figs. 4/7 shared: model-estimated vs actual time across segment sizes
/// for every submodule combination; checks that the best-estimated and
/// best-actual configurations agree.
fn model_validation(cfg: &Cfg, coll: Coll, fig: &str) {
    let preset = cfg.tuning();
    let m = cfg.validation_msg();
    println!(
        "## {fig} — {} cost model validation ({} message, {} nodes x {} ppn)\n",
        coll.name(),
        size_label(m),
        preset.topology.nodes(),
        preset.topology.ppn()
    );
    let seg_sizes = sizes(16 * 1024, m.min(4 << 20));
    let mut best_est: Option<(Time, HanConfig)> = None;
    let mut best_act: Option<(Time, HanConfig)> = None;
    let mut tb = TaskBench::new(&preset);
    let mut machine = Machine::from_preset(&preset);
    let mut out = Vec::new();
    for smod in [IntraModule::Sm, IntraModule::Solo] {
        for (imod, alg, name) in inter_combos() {
            let mut t = Table::new(&["fs", "estimated", "actual", "err%"]);
            for &fs in &seg_sizes {
                let hc = combo_cfg(imod, alg, smod, fs);
                let est = han_tuner::model::predict(&mut tb, &hc, coll, m).expect("modelled coll");
                let han = Han::with_config(hc);
                let act = time_coll_on(&han, &mut machine, &preset, coll, m, 0).expect("supported");
                let err = 100.0 * (est.as_ps() as f64 - act.as_ps() as f64) / act.as_ps() as f64;
                t.row(vec![size_label(fs), us(est), us(act), format!("{err:+.1}")]);
                if best_est.map(|(b, _)| est < b).unwrap_or(true) {
                    best_est = Some((est, hc));
                }
                if best_act.map(|(b, _)| act < b).unwrap_or(true) {
                    best_act = Some((act, hc));
                }
                out.push((
                    name.to_string(),
                    smod.to_string(),
                    fs,
                    est.as_ps(),
                    act.as_ps(),
                ));
            }
            println!("### {name} + {smod}\n{}", t.render());
        }
    }
    let (_, ce) = best_est.unwrap();
    let (ta, ca) = best_act.unwrap();
    println!("best estimated config: {ce}");
    println!("best actual    config: {ca}  ({})", us(ta));
    let han_est = Han::with_config(ce);
    let achieved = time_coll_on(&han_est, &mut machine, &preset, coll, m, 0).expect("supported");
    println!(
        "model-picked config achieves {} = {:.1}% of true optimum\n",
        us(achieved),
        100.0 * ta.as_ps() as f64 / achieved.as_ps() as f64
    );
    save_json(fig, &out).ok();
}

fn fig4(cfg: &Cfg) {
    model_validation(cfg, Coll::Bcast, "fig4");
}

fn fig7(cfg: &Cfg) {
    model_validation(cfg, Coll::Allreduce, "fig7");
}

/// Fig. 6: overlap between ib and ir (opposite network directions).
fn fig6(_cfg: &Cfg) {
    println!("## Fig. 6 — overlap between ib and ir (root 0; times in us)\n");
    let preset = shaheen2_ppn(6, 12);
    let seg = 512 * 1024;
    let mut out = Vec::new();
    for (imod, alg, name) in inter_combos() {
        let hc = combo_cfg(imod, alg, IntraModule::Sm, seg);
        let mut tb = TaskBench::new(&preset);
        let ib = tb.first_cost(&hc, TaskSpec::IB, seg);
        let ir = tb.first_cost(&hc, TaskSpec::IR, seg);
        let both = tb.first_cost(&hc, TaskSpec::IBIR, seg);
        let mut t = Table::new(&["leader", "ib", "ir", "ib||ir", "saved (us)"]);
        for l in 0..preset.topology.nodes() {
            // Time saved by overlap vs running the two tasks serially
            // (negative = interference outweighed overlap on this leader).
            let saved = (ib[l] + ir[l]).as_ps() as i128 - both[l].as_ps() as i128;
            t.row(vec![
                l.to_string(),
                us(ib[l]),
                us(ir[l]),
                us(both[l]),
                format!("{:+.1}", saved as f64 / 1e6),
            ]);
        }
        println!("### {name}\n{}", t.render());
        out.push((name.to_string(), ib.len()));
    }
    save_json("fig6", &out).ok();
}

/// Fig. 8: total tuning time of the four strategies. `prune` bound-prunes
/// the exhaustive sweeps (winner tables are provably unchanged); callers
/// that consume the full sample distribution must pass `false`.
fn fig8(cfg: &Cfg, prune: bool) -> ([han_tuner::TuneResult; 4], Option<Arc<CostCache>>) {
    let preset = cfg.tuning();
    println!(
        "## Fig. 8 — total search time, Bcast+Allreduce, {} nodes x {} ppn{}\n",
        preset.topology.nodes(),
        preset.topology.ppn(),
        if prune { " (bound-pruned)" } else { "" }
    );
    let mut space = SearchSpace::standard();
    if cfg.scale == Scale::Mini {
        space.msg_sizes = sizes(4, 1 << 20);
        space.seg_sizes = sizes(16 * 1024, 512 * 1024);
    }
    let colls = [Coll::Bcast, Coll::Allreduce];
    let cache = cfg.cost_cache(&preset);
    let mut walls = Vec::new();
    let results: Vec<han_tuner::TuneResult> = Strategy::ALL
        .iter()
        .map(|&s| {
            let t0 = std::time::Instant::now();
            let r = tune_with_opts(
                &preset,
                &space,
                &colls,
                s,
                cache.clone(),
                TuneOpts {
                    prune,
                    delta: cfg.delta,
                },
            );
            walls.push(t0.elapsed().as_secs_f64());
            r
        })
        .collect();
    let base = results[0].tuning_time.as_secs_f64();
    let mut t = Table::new(&[
        "strategy",
        "searches",
        "pruned",
        "virtual time",
        "% of exhaustive",
        "wall (s)",
    ]);
    let mut out = Vec::new();
    for (r, wall) in results.iter().zip(&walls) {
        t.row(vec![
            r.strategy.name().to_string(),
            r.searches.to_string(),
            r.pruned.to_string(),
            format!("{:.2}s", r.tuning_time.as_secs_f64()),
            format!("{:.1}%", 100.0 * r.tuning_time.as_secs_f64() / base),
            format!("{wall:.2}"),
        ]);
        out.push((
            r.strategy.name().to_string(),
            r.searches,
            r.tuning_time.as_ps(),
        ));
    }
    println!("{}", t.render());
    for r in &results {
        for s in &r.skipped {
            println!("[skipped] {} ({})", s, r.strategy.name());
            // Bcast and Allreduce are mandatory on every stack, so any
            // skip in this sweep is a regression — fail the run.
            gate::note(s);
        }
    }
    if let Some(c) = &cache {
        let s = c.stats();
        println!(
            "cost cache: {} hits / {} misses ({} coll + {} task entries)\n",
            s.hits, s.misses, s.coll_entries, s.task_entries
        );
    }
    cfg.persist_cache(cache.as_ref());
    save_json("fig8", &out).ok();
    let results = results
        .try_into()
        .unwrap_or_else(|_| unreachable!("four strategies"));
    (results, cache)
}

/// Fig. 9: achieved collective latency per tuning method, against the
/// exhaustive best/median/average.
fn fig9(cfg: &Cfg) {
    // Fig. 9 reports the exhaustive best/median/average distribution, so
    // the sweep must sample *every* candidate — pruning is forced off.
    let (results, cache) = fig8(cfg, false);
    let preset = cfg.tuning();
    println!("## Fig. 9 — achieved latency by tuning method (us)\n");
    let probe_sizes: Vec<u64> = results[0]
        .table
        .sampled_sizes(Coll::Bcast)
        .into_iter()
        .filter(|&m| m >= 64 * 1024)
        .collect();
    let mut out = Vec::new();
    for coll in [Coll::Bcast, Coll::Allreduce] {
        let mut t = Table::new(&[
            "size", "best", "median", "average", "HAN", "exh+heur", "HAN+heur",
        ]);
        for &m in &probe_sizes {
            let dist = Summary::from_iter(
                results[0]
                    .samples
                    .iter()
                    .filter(|(c, mm, _, _)| *c == coll && *mm == m)
                    .map(|(_, _, _, t)| *t),
            );
            let achieved = |r: &han_tuner::TuneResult| {
                han_tuner::search::achieved_latency_with_cache(
                    &preset,
                    &r.table,
                    coll,
                    m,
                    cache.as_deref(),
                )
                .expect("tuned collectives are supported")
            };
            t.row(vec![
                size_label(m),
                us(dist.best()),
                us(dist.median()),
                us(dist.average()),
                us(achieved(&results[2])),
                us(achieved(&results[1])),
                us(achieved(&results[3])),
            ]);
            out.push((
                coll.name(),
                m,
                dist.best().as_ps(),
                dist.median().as_ps(),
                achieved(&results[2]).as_ps(),
            ));
        }
        println!("### {}\n{}", coll.name(), t.render());
    }
    cfg.persist_cache(cache.as_ref());
    save_json("fig9", &out).ok();
}

/// Shared driver for the four IMB comparison figures (10, 12, 13, 14).
fn imb_figure(
    fig: &str,
    preset: &MachinePreset,
    coll: Coll,
    stacks: Vec<Box<dyn MpiStack>>,
    max_msg: u64,
) {
    println!(
        "## {fig} — {} on {} ({} procs); latency in us\n",
        coll.name(),
        preset.name,
        preset.topology.world_size()
    );
    let refs: Vec<&dyn MpiStack> = stacks.iter().map(|b| b.as_ref()).collect();
    let rows = imb_sweep(&refs, preset, coll, &sizes(4, max_msg));
    let mut header = vec!["size".to_string()];
    header.extend(stacks.iter().map(|s| s.name()));
    let mut t = Table::new(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for row in &rows {
        let mut cells = vec![size_label(row.bytes)];
        cells.extend(
            row.results
                .iter()
                .map(|(_, time)| time.map(us).unwrap_or_else(|| "n/a".to_string())),
        );
        t.row(cells);
    }
    println!("{}", t.render());
    // Speedup summary vs each competitor (the paper's headline numbers).
    let han = stacks[0].name();
    for other in stacks.iter().skip(1) {
        let mut small_best = 0f64;
        let mut large_best = 0f64;
        for row in &rows {
            let s = row.speedup(&han, &other.name()).unwrap_or(1.0);
            if row.bytes <= 128 * 1024 {
                small_best = small_best.max(s);
            } else {
                large_best = large_best.max(s);
            }
        }
        println!(
            "max speedup of {han} vs {}: {small_best:.2}x (small), {large_best:.2}x (large)",
            other.name()
        );
    }
    println!();
    let json: Vec<(u64, Vec<(String, u64)>)> = rows
        .iter()
        .map(|r| {
            (
                r.bytes,
                r.results
                    .iter()
                    .filter_map(|(n, t)| t.map(|t| (n.clone(), t.as_ps())))
                    .collect(),
            )
        })
        .collect();
    save_json(fig, &json).ok();
}

fn fig10(cfg: &Cfg) {
    let preset = cfg.shaheen();
    let han = han_for(&preset, "shaheen");
    imb_figure(
        "fig10",
        &preset,
        Coll::Bcast,
        vec![
            Box::new(han),
            Box::new(TunedOpenMpi),
            Box::new(VendorMpi::cray()),
        ],
        cfg.max_msg(),
    );
}

fn fig11(_cfg: &Cfg) {
    println!("## Fig. 11 — Netpipe P2P bandwidth on Shaheen II (GB/s)\n");
    let preset = shaheen2_ppn(2, 32);
    let szs = sizes(1, 64 << 20);
    let ompi = netpipe_sweep(&preset, Flavor::OpenMpi, &szs);
    let cray = netpipe_sweep(&preset, Flavor::CrayMpi, &szs);
    let mut t = Table::new(&["size", "Open MPI", "Cray MPI", "ratio"]);
    let mut out = Vec::new();
    for (o, c) in ompi.iter().zip(&cray) {
        t.row(vec![
            size_label(o.bytes),
            format!("{:.3}", o.bandwidth / 1e9),
            format!("{:.3}", c.bandwidth / 1e9),
            format!("{:.2}", c.bandwidth / o.bandwidth),
        ]);
        out.push((o.bytes, o.bandwidth, c.bandwidth));
    }
    println!("{}", t.render());
    save_json("fig11", &out).ok();
}

fn fig12(cfg: &Cfg) {
    let preset = cfg.stampede();
    let han = han_for(&preset, "stampede");
    imb_figure(
        "fig12",
        &preset,
        Coll::Bcast,
        vec![
            Box::new(han),
            Box::new(VendorMpi::intel()),
            Box::new(VendorMpi::mvapich2()),
            Box::new(TunedOpenMpi),
        ],
        cfg.max_msg(),
    );
}

fn fig13(cfg: &Cfg) {
    let preset = cfg.shaheen();
    let han = han_for(&preset, "shaheen");
    imb_figure(
        "fig13",
        &preset,
        Coll::Allreduce,
        vec![
            Box::new(han),
            Box::new(TunedOpenMpi),
            Box::new(VendorMpi::cray()),
        ],
        cfg.max_msg(),
    );
}

fn fig14(cfg: &Cfg) {
    let preset = cfg.stampede();
    let han = han_for(&preset, "stampede");
    imb_figure(
        "fig14",
        &preset,
        Coll::Allreduce,
        vec![
            Box::new(han),
            Box::new(VendorMpi::intel()),
            Box::new(VendorMpi::mvapich2()),
            Box::new(TunedOpenMpi),
        ],
        cfg.max_msg(),
    );
}

/// Fig. 15: Horovod/AlexNet throughput scaling.
fn fig15(cfg: &Cfg) {
    println!("## Fig. 15 — Horovod (AlexNet-like) images/s on Stampede2\n");
    let node_counts: Vec<usize> = match cfg.scale {
        Scale::Paper => vec![1, 2, 4, 8, 16, 32],
        Scale::Mini => vec![1, 2, 4],
    };
    let ppn = match cfg.scale {
        Scale::Paper => 48,
        Scale::Mini => 8,
    };
    let hv = han_apps::HorovodConfig::default();
    let mut t = Table::new(&["procs", "HAN", "Intel MPI", "default Open MPI"]);
    let mut out = Vec::new();
    for &nodes in &node_counts {
        let preset = stampede2_ppn(nodes, ppn);
        let han = han_for(&preset, &format!("stampede_{nodes}x{ppn}"));
        let h = han_apps::run_horovod(&han, &preset, &hv);
        let i = han_apps::run_horovod(&VendorMpi::intel(), &preset, &hv);
        let o = han_apps::run_horovod(&TunedOpenMpi, &preset, &hv);
        t.row(vec![
            h.procs.to_string(),
            format!("{:.1}", h.images_per_sec),
            format!("{:.1}", i.images_per_sec),
            format!("{:.1}", o.images_per_sec),
        ]);
        out.push((
            h.procs,
            h.images_per_sec,
            i.images_per_sec,
            o.images_per_sec,
        ));
    }
    println!("{}", t.render());
    if let Some((p, h, i, o)) = out.last() {
        println!(
            "at {p} procs: HAN is {:+.1}% vs Intel MPI, {:+.1}% vs default Open MPI\n",
            100.0 * (h / i - 1.0),
            100.0 * (h / o - 1.0)
        );
    }
    save_json("fig15", &out).ok();
}

/// Table III: ASP on 1536 processes.
fn table3(cfg: &Cfg) {
    println!("## Table III — ASP (Floyd-Warshall), first P iterations\n");
    let preset = cfg.stampede();
    let world = preset.topology.world_size();
    let asp = han_apps::AspConfig {
        vertices: match cfg.scale {
            Scale::Paper => 16 * 1024,
            Scale::Mini => 2048,
        },
        flops: 1.2e9,
        iterations: Some(world),
    };
    let han = han_for(&preset, "stampede");
    let stacks: Vec<(&str, Box<dyn MpiStack>)> = vec![
        ("HAN", Box::new(han)),
        ("Intel MPI", Box::new(VendorMpi::intel())),
        ("MVAPICH2", Box::new(VendorMpi::mvapich2())),
        ("default Open MPI", Box::new(TunedOpenMpi)),
    ];
    let mut t = Table::new(&[
        "stack",
        "total (s)",
        "comm (s)",
        "comm %",
        "speedup vs self",
    ]);
    let mut reports = Vec::new();
    for (name, stack) in &stacks {
        let rep = han_apps::run_asp(stack.as_ref(), &preset, &asp);
        reports.push((name.to_string(), rep));
    }
    let han_total = reports[0].1.total;
    for (name, rep) in &reports {
        t.row(vec![
            name.clone(),
            format!("{:.3}", rep.total.as_secs_f64()),
            format!("{:.3}", rep.comm.as_secs_f64()),
            format!("{:.2}%", 100.0 * rep.comm_ratio()),
            format!(
                "{:.2}x",
                rep.total.as_ps() as f64 / han_total.as_ps() as f64
            ),
        ]);
    }
    println!("{}", t.render());
    let json: Vec<(String, u64, u64, f64)> = reports
        .iter()
        .map(|(n, r)| (n.clone(), r.total.as_ps(), r.comm.as_ps(), r.comm_ratio()))
        .collect();
    save_json("table3", &json).ok();
}

/// Ablation: HAN's cross-level pipelining (fs sweep up to "one segment").
fn ablation_pipeline(cfg: &Cfg) {
    println!("## Ablation — pipelining (segment size sweep incl. no pipeline)\n");
    let preset = cfg.tuning();
    let m = cfg.validation_msg().max(4 << 20);
    let mut t = Table::new(&["fs", "bcast", "allreduce"]);
    let mut fss = sizes(64 * 1024, m);
    if *fss.last().unwrap() != m {
        fss.push(m); // the no-pipeline point
    }
    for fs in fss {
        let hc = HanConfig::default()
            .with_fs(fs)
            .with_intra(if fs >= 512 * 1024 {
                IntraModule::Solo
            } else {
                IntraModule::Sm
            });
        let han = Han::with_config(hc);
        t.row(vec![
            size_label(fs),
            us(time_coll(&han, &preset, Coll::Bcast, m, 0).expect("supported")),
            us(time_coll(&han, &preset, Coll::Allreduce, m, 0).expect("supported")),
        ]);
    }
    println!("{}", t.render());
    println!("(fs = message size disables the pipeline; mid-range fs wins)\n");
}

/// Ablation: breaking inter-node allreduce into ir+ib with the same
/// algorithm/root (HAN) vs mismatched algorithms (no aligned overlap).
fn ablation_irib(cfg: &Cfg) {
    println!("## Ablation — ir+ib same algorithm/root vs mismatched\n");
    let preset = cfg.tuning();
    let m = cfg.validation_msg();
    let mut t = Table::new(&["config", "allreduce"]);
    let same = HanConfig {
        ibalg: InterAlg::Binary,
        iralg: InterAlg::Binary,
        ..HanConfig::default().with_fs(256 * 1024)
    };
    let mixed = HanConfig {
        ibalg: InterAlg::Binary,
        iralg: InterAlg::Binomial,
        ..HanConfig::default().with_fs(256 * 1024)
    };
    for (name, hc) in [
        ("same (binary/binary)", same),
        ("mixed (binomial ir, binary ib)", mixed),
    ] {
        let han = Han::with_config(hc);
        t.row(vec![
            name.to_string(),
            us(time_coll(&han, &preset, Coll::Allreduce, m, 0).expect("supported")),
        ]);
    }
    println!("{}", t.render());
}

/// Ablation: task-based model accuracy vs conventional analytic models.
fn ablation_models(cfg: &Cfg) {
    println!("## Ablation — prediction error: task-based model vs analytic models\n");
    let preset = cfg.tuning();
    let mut tb = TaskBench::new(&preset);
    let mut machine = Machine::from_preset(&preset);
    let mut rows: Vec<(String, Vec<(Time, Time)>)> = han_tuner::analytic::AnalyticModel::ALL
        .iter()
        .map(|m| (m.name().to_string(), Vec::new()))
        .collect();
    rows.push(("task-based (HAN)".into(), Vec::new()));
    for &m in &sizes(256 * 1024, cfg.validation_msg()) {
        for fs in [128 * 1024u64, 512 * 1024] {
            let hc = HanConfig::default()
                .with_fs(fs)
                .with_intra(if fs >= 512 * 1024 {
                    IntraModule::Solo
                } else {
                    IntraModule::Sm
                });
            let han = Han::with_config(hc);
            let actual =
                time_coll_on(&han, &mut machine, &preset, Coll::Bcast, m, 0).expect("supported");
            for (i, model) in han_tuner::analytic::AnalyticModel::ALL.iter().enumerate() {
                let p = han_tuner::analytic::predict_bcast(*model, &preset, &hc, m);
                rows[i].1.push((p, actual));
            }
            let p = han_tuner::model::predict(&mut tb, &hc, Coll::Bcast, m).expect("modelled");
            rows.last_mut().unwrap().1.push((p, actual));
        }
    }
    let mut t = Table::new(&["model", "mean |rel err|"]);
    for (name, pairs) in &rows {
        t.row(vec![
            name.clone(),
            format!(
                "{:.1}%",
                100.0 * han_tuner::analytic::mean_relative_error(pairs)
            ),
        ]);
    }
    println!("{}", t.render());
}

/// `repro verify`: run the performance-guideline catalog (han-verify)
/// over the standard mini / mini3 / socketized presets and persist the
/// structured report. Violations are recorded on the exit-code gate so
/// the process ends nonzero — this is what the CI smoke job runs.
fn verify(_cfg: &Cfg) {
    println!("## verify — performance-guideline catalog (han-verify)\n");
    let presets = han_verify::standard_presets();
    let report = han_verify::run_suite(&presets);

    let mut t = Table::new(&["guideline", "checks", "violations"]);
    for g in &report.guidelines {
        t.row(vec![
            g.id.clone(),
            g.checks.to_string(),
            g.violations.len().to_string(),
        ]);
    }
    println!("{}", t.render());
    for v in report.violations() {
        println!(
            "[violation] {} on {} / {} ({}, m={}): {} (observed {} ps, bound {} ps, \
             slack {:+.3})",
            v.guideline,
            v.preset,
            v.coll,
            v.config,
            v.m,
            v.detail,
            v.observed_ps,
            v.bound_ps,
            v.rel_slack
        );
    }
    save_json("verify", &report).ok();
    println!(
        "verify: {} presets, {} guidelines, {} checks, {} violation(s) \
         -> results/verify.json",
        report.presets.len(),
        report.guidelines.len(),
        report.total_checks,
        report.total_violations
    );
    if !report.passed() {
        gate::fail(format!(
            "{} guideline violation(s)",
            report.total_violations
        ));
    }
}

/// One persisted front point: `(cfg display, menu?, lat_ps, bw_ps)`.
type SynthPointRow = (String, bool, u64, u64);
/// One persisted front: `(coll, m, points, menu_best_ps)`.
type SynthFrontRow = (String, u64, Vec<SynthPointRow>, Option<u64>);

/// `repro synth`: schedule synthesis beyond the Table-II menu
/// (han-synth) on the standard small presets. Emits the per-group
/// latency/bandwidth Pareto fronts, re-executes **every** front point
/// through the full-payload correctness oracle, and persists
/// `results/synth.json`. The exit-code gate requires zero correctness
/// failures, zero unexpected skips, and at least one group where the
/// synthesized winner strictly beats the best Table-II menu schedule —
/// the claim that makes synthesis worth shipping.
fn synth(cfg: &Cfg) {
    use han_machine::{dgx_like, mini, mini3};
    use han_synth::{synthesize, verify_schedule, SynthOpts};
    println!("## synth — schedule synthesis beyond the Table-II menu (han-synth)\n");
    let presets = vec![mini(4, 4), mini3(2, 2, 2), dgx_like(2, 4)];
    let space = if cfg.scale == Scale::Mini {
        han_synth::default_space()
    } else {
        SearchSpace {
            msg_sizes: vec![16 * 1024, 256 * 1024, 2 << 20, 8 << 20],
            seg_sizes: vec![32 * 1024, 256 * 1024, 1 << 20],
            inter: SearchSpace::standard().inter,
            intra: vec![IntraModule::Sm, IntraModule::Solo],
        }
    };
    let opts = SynthOpts {
        prune: cfg.prune,
        delta: cfg.delta,
        ..SynthOpts::default()
    };
    let colls = [Coll::Bcast, Coll::Allreduce, Coll::Reduce];

    let mut t = Table::new(&[
        "preset",
        "groups",
        "candidates",
        "simulated",
        "pruned",
        "beamed",
        "pareto pts",
        "strict wins",
        "oracle",
    ]);
    let mut json: Vec<(String, Vec<SynthFrontRow>)> = Vec::new();
    let mut total_wins = 0usize;
    let mut total_points = 0usize;
    let mut oracle_failures = 0usize;
    for preset in &presets {
        let r = synthesize(preset, &space, &colls, opts);
        if !r.skipped.is_empty() {
            gate::fail(format!(
                "synth on {}: unexpected skips: {:?}",
                preset.name, r.skipped
            ));
        }
        let mut checked = 0usize;
        let mut failed = 0usize;
        for f in &r.fronts {
            for p in &f.points {
                checked += 1;
                if let Err(e) = verify_schedule(preset, &p.cfg, f.coll, f.m, 0) {
                    failed += 1;
                    println!("[oracle failure] {}: {e}", preset.name);
                }
            }
        }
        oracle_failures += failed;
        let wins = r.strict_wins();
        total_wins += wins;
        let points: usize = r.fronts.iter().map(|f| f.points.len()).sum();
        total_points += points;
        t.row(vec![
            preset.name.to_string(),
            r.fronts.len().to_string(),
            r.candidates.to_string(),
            r.simulated.to_string(),
            r.pruned.to_string(),
            r.beamed.to_string(),
            points.to_string(),
            wins.to_string(),
            format!("{}/{checked}", checked - failed),
        ]);
        json.push((
            preset.name.to_string(),
            r.fronts
                .iter()
                .map(|f| {
                    (
                        f.coll.name().to_string(),
                        f.m,
                        f.points
                            .iter()
                            .map(|p| (p.cfg.to_string(), p.menu, p.lat_ps, p.bw_ps))
                            .collect(),
                        f.menu_best_ps,
                    )
                })
                .collect(),
        ));
    }
    println!("{}", t.render());
    save_json("synth", &json).ok();
    println!(
        "synth: {} presets, {total_points} pareto points, {total_wins} strict \
         synth-beats-menu win(s) -> results/synth.json",
        presets.len()
    );
    if oracle_failures > 0 {
        gate::fail(format!(
            "{oracle_failures} synthesized schedule(s) failed the correctness oracle"
        ));
    }
    if total_wins == 0 {
        gate::fail("synthesis never strictly beat the Table-II menu".to_string());
    }
}

/// `repro hetero`: the HiCCL-style depth-scaling experiment on
/// heterogeneous GPU-era machines, plus the multi-rail striping win,
/// persisted to `results/hetero.json`.
///
/// The machine grows as it deepens, HiCCL's hardware shape (node → board
/// → device → tile): `[4,4]` (16 ranks) → `[4,4,4]` (64) → `[4,4,4,4]`
/// (256), every added inner level faster than the one containing it (see
/// [`han_machine::gpu_hier`]). HAN is tuned per machine over a small
/// exhaustive space; the baseline is the topology-oblivious single-level
/// reference stack, which sees none of the hierarchy. The hierarchical
/// margin must grow with depth — a non-monotone depth column trips the
/// exit-code gate, so CI can run this target the way it runs `verify`.
fn hetero(_cfg: &Cfg) {
    use han_machine::{dgx_like, gpu_hier, RailPolicy};
    println!("## hetero — depth scaling on heterogeneous machines + NIC striping\n");
    let shapes: [&[usize]; 3] = [&[4, 4], &[4, 4, 4], &[4, 4, 4, 4]];
    let m: u64 = 4 << 20;
    let mut space = SearchSpace::standard();
    space.msg_sizes = vec![m];
    let colls = [Coll::Bcast, Coll::Allreduce];
    let flat = TunedOpenMpi;

    let mut rows: Vec<(String, usize, String, u64, u64, f64)> = Vec::new();
    let mut t = Table::new(&["extents", "coll", "HAN", "flat", "speedup"]);
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); colls.len()];
    for shape in shapes {
        let preset = gpu_hier(shape);
        let tuned = tune_with_opts(
            &preset,
            &space,
            &colls,
            Strategy::Exhaustive,
            None,
            TuneOpts {
                prune: true,
                delta: true,
            },
        );
        let han = Han::tuned(Arc::new(tuned.table));
        for (ci, &coll) in colls.iter().enumerate() {
            let th = time_coll(&han, &preset, coll, m, 0).expect("HAN");
            let tf = time_coll(&flat, &preset, coll, m, 0).expect("flat");
            let speedup = tf.as_ps() as f64 / th.as_ps().max(1) as f64;
            t.row(vec![
                format!("{shape:?}"),
                coll.name().to_string(),
                us(th),
                us(tf),
                format!("{speedup:.2}x"),
            ]);
            speedups[ci].push(speedup);
            rows.push((
                format!("{shape:?}"),
                shape.len(),
                coll.name().to_string(),
                th.as_ps(),
                tf.as_ps(),
                speedup,
            ));
        }
    }
    println!("{}", t.render());

    // Multi-rail NICs: the same DGX-like machine with its 4 striped rails
    // collapsed to one. Striping multiplies injection bandwidth, so the
    // bandwidth-bound broadcast must speed up.
    let dgx = dgx_like(2, 4);
    let dgx1 = dgx.with_rails(1, RailPolicy::Stripe);
    let hc = Han::with_config(HanConfig::default().with_fs(256 * 1024));
    let t4 = time_coll(&hc, &dgx, Coll::Bcast, m, 0).expect("striped");
    let t1 = time_coll(&hc, &dgx1, Coll::Bcast, m, 0).expect("single rail");
    let rail_speedup = t1.as_ps() as f64 / t4.as_ps().max(1) as f64;
    println!(
        "rail striping: bcast {} on 1 rail -> {} on {} striped rails ({:.2}x)\n",
        us(t1),
        us(t4),
        dgx.net.rails,
        rail_speedup
    );

    save_json("hetero", &(&rows, rail_speedup)).ok();
    println!("hetero: {} rows -> results/hetero.json", rows.len());

    for (ci, coll) in colls.iter().enumerate() {
        let s = &speedups[ci];
        if !s.windows(2).all(|w| w[0] < w[1]) {
            gate::fail(format!(
                "{} hierarchical speedup not increasing with depth: {s:?}",
                coll.name()
            ));
        }
    }
    if rail_speedup <= 1.0 {
        gate::fail(format!("rail striping speedup {rail_speedup:.2} <= 1"));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut cache = CacheMode::Mem;
    let mut levels = 2usize;
    let mut prune = true;
    let mut delta = true;
    let mut what = "all".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--no-prune" {
            prune = false;
        } else if a == "--no-delta" {
            delta = false;
        } else if a == "--allow-clamped" {
            gate::allow_clamped();
        } else if a == "--scale" {
            if let Some(v) = it.next() {
                scale = if v == "mini" {
                    Scale::Mini
                } else {
                    Scale::Paper
                };
            }
        } else if a == "--cache" {
            if let Some(v) = it.next() {
                cache = match v.as_str() {
                    "off" => CacheMode::Off,
                    "disk" => CacheMode::Disk,
                    _ => CacheMode::Mem,
                };
            }
        } else if a == "--levels" {
            if let Some(v) = it.next() {
                levels = match v.as_str() {
                    "3" => 3,
                    "2" => 2,
                    other => {
                        eprintln!("--levels must be 2 or 3, got '{other}'");
                        std::process::exit(2);
                    }
                };
            }
        } else if !a.starts_with("--") {
            what = a.clone();
        }
    }
    let cfg = Cfg {
        scale,
        cache,
        levels,
        prune,
        delta,
    };
    if levels > 2 {
        // Deep sweeps write results/<fig>_d3.json; two-level files stay put.
        han_bench::report::set_result_suffix(&format!("_d{levels}"));
    }

    // Report the hierarchy actually in use (the tuning machine is
    // representative; all presets share the same depth).
    let probe = cfg.tuning();
    println!(
        "machine hierarchy ({} levels, extents {:?}):",
        probe.topology.depth(),
        probe.topology.levels()
    );
    let lv = probe.level_params();
    for (k, lp) in lv.iter().enumerate() {
        println!(
            "  level {}: {:<13} {:>7.1} GB/s, {} latency",
            k,
            han_machine::level_label(lv.depth(), k),
            lp.bandwidth / 1e9,
            lp.latency
        );
    }
    println!();

    let start = std::time::Instant::now();
    match what.as_str() {
        "fig2" => fig2(&cfg),
        "fig3" => fig3(&cfg),
        "fig4" => fig4(&cfg),
        "fig6" => fig6(&cfg),
        "fig7" => fig7(&cfg),
        "fig8" => {
            fig8(&cfg, cfg.prune);
        }
        "fig9" => fig9(&cfg),
        "fig10" => fig10(&cfg),
        "fig11" => fig11(&cfg),
        "fig12" => fig12(&cfg),
        "fig13" => fig13(&cfg),
        "fig14" => fig14(&cfg),
        "fig15" => fig15(&cfg),
        "table3" => table3(&cfg),
        "ablation-pipeline" => ablation_pipeline(&cfg),
        "ablation-irib" => ablation_irib(&cfg),
        "ablation-models" => ablation_models(&cfg),
        "verify" => verify(&cfg),
        "synth" => synth(&cfg),
        "hetero" => hetero(&cfg),
        "all" => {
            fig2(&cfg);
            fig3(&cfg);
            fig4(&cfg);
            fig6(&cfg);
            fig7(&cfg);
            fig9(&cfg); // includes fig8
            fig10(&cfg);
            fig11(&cfg);
            fig12(&cfg);
            fig13(&cfg);
            fig14(&cfg);
            fig15(&cfg);
            table3(&cfg);
            ablation_pipeline(&cfg);
            ablation_irib(&cfg);
            ablation_models(&cfg);
            verify(&cfg);
            synth(&cfg);
            hetero(&cfg);
        }
        other => {
            eprintln!(
                "unknown target '{other}'; expected fig2|fig3|fig4|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig15|table3|ablation-*|verify|synth|hetero|all"
            );
            std::process::exit(2);
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let eng = han_mpi::engine_totals();
    eprintln!(
        "[repro] {what} done in {wall:.1}s wall; event engine: {} pushes, {} pops \
         ({:.2}M events/s), {} batched pops (max burst {}), max queue depth {}",
        eng.pushes,
        eng.pops,
        eng.pops as f64 / wall.max(1e-9) / 1e6,
        eng.batched_pops,
        eng.max_batch,
        eng.max_depth
    );
    if eng.clamped > 0 {
        eprintln!(
            "[repro] WARNING: {} event(s) were scheduled in the past and clamped \
             to the current virtual time — simulation results may be suspect",
            eng.clamped
        );
        gate::note_clamped("repro event engine", eng.clamped);
    }
    let code = gate::finish("repro");
    if code != 0 {
        std::process::exit(code);
    }
}
