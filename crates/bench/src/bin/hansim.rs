//! hansim — ad-hoc collective exploration on the simulated cluster.
//!
//! ```text
//! hansim --nodes 8 --ppn 32 --coll bcast --bytes 4194304 \
//!        [--stack han|tuned|cray|intel|mvapich2] [--fs 524288]
//!        [--smod sm|solo] [--imod libnbc|adapt] [--alg chain|binary|binomial]
//!        [--machine shaheen2|stampede2|mini] [--trace out.json]
//!        [--mode timing|full] [--levels 8,2,4] [--verify]
//! ```
//!
//! Prints the virtual latency (and per-stack comparison when `--stack all`),
//! optionally dumping a Chrome trace of the execution for inspection in
//! `chrome://tracing` / Perfetto. In the `--stack all` comparison, a stack
//! that does not implement the requested collective is reported as
//! `unsupported` and skipped; when one stack is requested *explicitly*,
//! an unsupported combination is an error and the process exits with
//! code 3 (see `han_bench::gate`).
//!
//! `--verify` ignores the exploration flags and instead runs the
//! `han-verify` performance-guideline catalog over the standard presets,
//! writing `results/verify.json` and exiting nonzero on any violation —
//! the same suite as `repro verify`.
//!
//! `--levels` replaces the `--nodes`/`--ppn` pair with an explicit
//! level-extent vector, outermost first — e.g. `--levels 8,2,4` simulates
//! 8 nodes of 2 sockets × 4 ranks, with a cross-socket bus derating.

use han_colls::stack::{build_coll, Coll, MpiStack};
use han_colls::{InterAlg, InterModule, IntraModule, TunedOpenMpi, VendorMpi};
use han_core::{Han, HanConfig};
use han_machine::{mini, shaheen2_ppn, stampede2_ppn, Machine, MachinePreset, Topology};
use han_mpi::{trace_execution, ExecMode, ExecOpts};

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["verify", "allow-clamped", "serve"];

fn parse_args() -> std::collections::HashMap<String, String> {
    let mut map = std::collections::HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if let Some(key) = a.strip_prefix("--") {
            if BOOL_FLAGS.contains(&key) {
                map.insert(key.to_string(), "1".to_string());
                continue;
            }
            let val = args.next().unwrap_or_else(|| {
                eprintln!("missing value for --{key}");
                std::process::exit(2);
            });
            map.insert(key.to_string(), val);
        }
    }
    map
}

/// `hansim --verify`: the guideline suite, identical to `repro verify`.
fn run_verify() -> ! {
    let report = han_verify::run_suite(&han_verify::standard_presets());
    for g in &report.guidelines {
        println!(
            "{:>20}: {:>5} checks, {} violation(s)",
            g.id,
            g.checks,
            g.violations.len()
        );
    }
    for v in report.violations() {
        eprintln!(
            "[violation] {} on {} / {} ({}, m={}): {}",
            v.guideline, v.preset, v.coll, v.config, v.m, v.detail
        );
    }
    han_bench::report::save_json("verify", &report).ok();
    println!(
        "verify: {} checks, {} violation(s) -> results/verify.json",
        report.total_checks, report.total_violations
    );
    if !report.passed() {
        han_bench::gate::fail(format!(
            "{} guideline violation(s)",
            report.total_violations
        ));
    }
    std::process::exit(han_bench::gate::finish("hansim"));
}

/// `hansim --serve [--addr HOST:PORT]`: the tuning daemon. Binds the
/// address, kicks off background re-tunes of the standard presets so the
/// store warms up while already accepting connections, and serves until
/// a client sends `Shutdown` (or the process is killed).
fn run_serve(addr: &str) -> ! {
    let store = std::sync::Arc::new(han_serve::TableStore::new());
    let mut server = match han_serve::serve(addr, std::sync::Arc::clone(&store)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hansim --serve: cannot bind {addr}: {e}");
            std::process::exit(2);
        }
    };
    println!("hansim: serving decisions on {}", server.addr());
    for preset in han_verify::standard_presets() {
        let (fp, _worker) = han_serve::spawn_retune(std::sync::Arc::clone(&store), preset);
        println!("hansim: tuning table {fp:016x} in the background");
    }
    server.wait();
    println!("hansim: daemon shut down");
    std::process::exit(0);
}

fn stack_by_name(name: &str, cfg: HanConfig) -> Box<dyn MpiStack> {
    match name {
        "han" => Box::new(Han::with_config(cfg)),
        "tuned" => Box::new(TunedOpenMpi),
        "cray" => Box::new(VendorMpi::cray()),
        "intel" => Box::new(VendorMpi::intel()),
        "mvapich2" => Box::new(VendorMpi::mvapich2()),
        other => {
            eprintln!("unknown stack '{other}'");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    if args.contains_key("allow-clamped") {
        han_bench::gate::allow_clamped();
    }
    if args.contains_key("verify") {
        run_verify();
    }
    if args.contains_key("serve") {
        run_serve(
            &args
                .get("addr")
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:7070".to_string()),
        );
    }
    let get = |k: &str, d: &str| args.get(k).cloned().unwrap_or_else(|| d.to_string());

    let nodes: usize = get("nodes", "4").parse().expect("--nodes");
    let ppn: usize = get("ppn", "8").parse().expect("--ppn");
    let bytes: u64 = get("bytes", "1048576").parse().expect("--bytes");
    let coll = match get("coll", "bcast").as_str() {
        "bcast" => Coll::Bcast,
        "allreduce" => Coll::Allreduce,
        "reduce" => Coll::Reduce,
        "gather" => Coll::Gather,
        "scatter" => Coll::Scatter,
        "allgather" => Coll::Allgather,
        "barrier" => Coll::Barrier,
        other => {
            eprintln!("unknown collective '{other}'");
            std::process::exit(2);
        }
    };
    let mut preset: MachinePreset = match get("machine", "mini").as_str() {
        "shaheen2" => shaheen2_ppn(nodes, ppn),
        "stampede2" => stampede2_ppn(nodes, ppn),
        _ => mini(nodes, ppn),
    };
    if let Some(spec) = args.get("levels") {
        let extents: Vec<usize> = spec
            .split(',')
            .map(|s| {
                s.trim().parse().unwrap_or_else(|_| {
                    eprintln!("--levels expects comma-separated extents, got '{spec}'");
                    std::process::exit(2);
                })
            })
            .collect();
        preset.topology = Topology::from_levels(&extents);
        if preset.topology.depth() > 2 && preset.node.xsocket_bus_factor <= 1.0 {
            // Make the extra level observable: cross-domain transfers pay
            // a QPI-like derating unless the preset already sets one.
            preset.node.xsocket_bus_factor = 1.5;
        }
    }

    let mut cfg = HanConfig::default();
    if let Some(fs) = args.get("fs") {
        cfg.fs = fs.parse().expect("--fs");
    }
    if let Some(s) = args.get("smod") {
        cfg.smod = match s.as_str() {
            "solo" => IntraModule::Solo,
            _ => IntraModule::Sm,
        };
    }
    if let Some(s) = args.get("imod") {
        cfg.imod = match s.as_str() {
            "libnbc" => InterModule::Libnbc,
            _ => InterModule::Adapt,
        };
    }
    if let Some(a) = args.get("alg") {
        let alg = match a.as_str() {
            "chain" => InterAlg::Chain,
            "binary" => InterAlg::Binary,
            _ => InterAlg::Binomial,
        };
        cfg.ibalg = alg;
        cfg.iralg = alg;
    }

    // `timing` (default) skips all payload reads/copies; `full` moves real
    // bytes through simulated memory. Virtual times are identical in both.
    let mode = match get("mode", "timing").as_str() {
        "full" => ExecMode::Full,
        "timing" => ExecMode::TimingOnly,
        other => {
            eprintln!("unknown exec mode '{other}' (expected timing|full)");
            std::process::exit(2);
        }
    };

    let which = get("stack", "all");
    let names: Vec<&str> = if which == "all" {
        vec!["han", "tuned", "cray", "intel", "mvapich2"]
    } else {
        vec![which.as_str()]
    };

    println!(
        "{} on {} (levels {:?} = {} ranks), {} bytes",
        coll.name(),
        preset.name,
        preset.topology.levels(),
        preset.topology.world_size(),
        bytes
    );
    println!("HAN config: {cfg}\n");
    for name in names {
        let stack = stack_by_name(name, cfg);
        let prog = match build_coll(stack.as_ref(), &preset, coll, bytes, 0) {
            Ok(p) => p,
            Err(e) => {
                println!("{:>18}: unsupported ({e})", stack.name());
                // Skips are expected when comparing `all` stacks, but an
                // explicitly requested stack that cannot run the
                // requested collective must fail the invocation.
                if which != "all" {
                    han_bench::gate::note(&e);
                }
                continue;
            }
        };
        let mut machine = Machine::from_preset(&preset);
        let opts = ExecOpts::with_mode(stack.flavor().p2p(), mode);
        let (report, trace) = trace_execution(&mut machine, &prog, &opts);
        println!(
            "{:>18}: {:>12}  ({} ops, {} events)",
            stack.name(),
            report.makespan.to_string(),
            prog.len(),
            report.events
        );
        println!(
            "{:>18}  engine: {} pushes / {} pops ({} batched, max burst {}), \
             max queue depth {}",
            "",
            report.engine.pushes,
            report.engine.pops,
            report.engine.batched_pops,
            report.engine.max_batch,
            report.engine.max_depth
        );
        if report.engine.clamped > 0 {
            eprintln!(
                "{:>18}  WARNING: {} event(s) scheduled in the past were clamped \
                 to the current virtual time",
                "", report.engine.clamped
            );
            han_bench::gate::note_clamped(
                &format!("{} engine", stack.name()),
                report.engine.clamped,
            );
        }
        if let Some(path) = args.get("trace") {
            let p = if which == "all" {
                format!("{name}_{path}")
            } else {
                path.clone()
            };
            trace.save(std::path::Path::new(&p)).expect("write trace");
            println!("{:>18}  trace written to {p}", "");
        }
    }
    let code = han_bench::gate::finish("hansim");
    if code != 0 {
        std::process::exit(code);
    }
}
