//! Horovod-style synchronous data-parallel training (paper ref \[41\]).
//!
//! "Horovod … uses MPI_Allreduce to average gradients. We use
//! tf_cnn_benchmarks with synthetic datasets to train AlexNet on
//! Stampede2." Each training step computes gradients locally (modelled
//! compute), then allreduces the fused gradient buffers; throughput is
//! reported in images/second (Fig. 15).
//!
//! Gradient fusion mirrors Horovod's tensor-fusion buffer: the gradient
//! vector is reduced in `fusion_bytes` chunks, sequentially (Horovod
//! serializes fusion buffers on its background thread).

use han_colls::stack::{build_coll, Coll, MpiStack};
use han_machine::{Machine, MachinePreset};
use han_mpi::{execute, ExecOpts};
use han_sim::Time;

/// Trainer configuration.
#[derive(Debug, Clone, Copy)]
pub struct HorovodConfig {
    /// Total gradient size in bytes (AlexNet ≈ 62 M f32 params ≈ 249 MB).
    pub grad_bytes: u64,
    /// Fusion-buffer size (Horovod default 64 MB).
    pub fusion_bytes: u64,
    /// Modelled forward+backward time per image on one rank.
    pub time_per_image: Time,
    /// Per-rank batch size (images per step per process).
    pub batch_per_rank: u64,
}

impl Default for HorovodConfig {
    fn default() -> Self {
        HorovodConfig {
            grad_bytes: 249 << 20,
            fusion_bytes: 64 << 20,
            time_per_image: Time::from_ms(80),
            batch_per_rank: 4,
        }
    }
}

/// Throughput report for one machine scale.
#[derive(Debug, Clone, Copy)]
pub struct HorovodReport {
    pub procs: usize,
    pub step_time: Time,
    pub comm_time: Time,
    pub compute_time: Time,
    /// Aggregate training throughput (the Fig. 15 metric).
    pub images_per_sec: f64,
}

/// Run one (steady-state) training step under `stack` and derive
/// throughput. Synchronous SGD: `step = compute + allreduce`.
pub fn run_horovod(
    stack: &dyn MpiStack,
    preset: &MachinePreset,
    cfg: &HorovodConfig,
) -> HorovodReport {
    let procs = preset.topology.world_size();
    let mut machine = Machine::from_preset(preset);
    let opts = ExecOpts::timing(stack.flavor().p2p());

    // Allreduce the gradient in fusion-buffer chunks, sequentially.
    let mut comm_time = Time::ZERO;
    let mut remaining = cfg.grad_bytes;
    while remaining > 0 {
        let chunk = remaining.min(cfg.fusion_bytes);
        let prog = build_coll(stack, preset, Coll::Allreduce, chunk, 0).expect("allreduce");
        comm_time += execute(&mut machine, &prog, &opts).makespan;
        remaining -= chunk;
    }

    let compute_time = cfg.time_per_image * cfg.batch_per_rank;
    let step_time = compute_time + comm_time;
    let images = (procs as u64 * cfg.batch_per_rank) as f64;
    HorovodReport {
        procs,
        step_time,
        comm_time,
        compute_time,
        images_per_sec: images / step_time.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_colls::{IntraModule, TunedOpenMpi};
    use han_core::{Han, HanConfig};
    use han_machine::mini;

    fn small_cfg() -> HorovodConfig {
        HorovodConfig {
            grad_bytes: 8 << 20,
            fusion_bytes: 4 << 20,
            time_per_image: Time::from_ms(20),
            batch_per_rank: 4,
        }
    }

    #[test]
    fn report_consistency() {
        let preset = mini(2, 4);
        let rep = run_horovod(&TunedOpenMpi, &preset, &small_cfg());
        assert_eq!(rep.procs, 8);
        assert_eq!(rep.step_time, rep.comm_time + rep.compute_time);
        assert!(rep.images_per_sec > 0.0);
        // Two fusion chunks of 4 MB each.
        assert!(rep.comm_time > Time::ZERO);
    }

    #[test]
    fn throughput_scales_with_procs_sublinearly() {
        let cfg = small_cfg();
        let t2 = run_horovod(&TunedOpenMpi, &mini(2, 4), &cfg);
        let t4 = run_horovod(&TunedOpenMpi, &mini(4, 4), &cfg);
        assert!(
            t4.images_per_sec > t2.images_per_sec,
            "more procs, more images/s"
        );
        // But not superlinear: allreduce cost grows with scale.
        assert!(t4.images_per_sec < t2.images_per_sec * 2.2);
    }

    #[test]
    fn han_beats_tuned_throughput() {
        let cfg = small_cfg();
        let preset = mini(4, 4);
        let han = Han::with_config(
            HanConfig::default()
                .with_fs(1 << 20)
                .with_intra(IntraModule::Solo),
        );
        let h = run_horovod(&han, &preset, &cfg);
        let t = run_horovod(&TunedOpenMpi, &preset, &cfg);
        assert!(
            h.images_per_sec > t.images_per_sec,
            "HAN {} img/s vs tuned {} img/s",
            h.images_per_sec,
            t.images_per_sec
        );
        // Compute model identical; the gain is all communication.
        assert_eq!(h.compute_time, t.compute_time);
    }
}
