//! ASP: parallel Floyd–Warshall all-pairs shortest paths (paper ref \[40\]).
//!
//! "Processes take turns to act as the root, and broadcast a row of the
//! weight matrix to others, followed by computations, which causes
//! MPI_Bcast to be the most time-consuming part of ASP."
//!
//! The distance matrix is row-block distributed. Iteration `k` broadcasts
//! pivot row `k` from its owner, then every rank relaxes its rows:
//! `d[i][j] = min(d[i][j], d[i][k] + d[k][j])`. Table III times the first
//! `P` iterations (each process roots once) on 1536 processes.
//!
//! Communication runs through the full simulated stack; the relaxation
//! compute is modelled as `rows_per_rank × n / flops` virtual seconds per
//! iteration (every rank does identical work, so the bulk-synchronous step
//! time is `bcast + compute`).

use han_colls::stack::{build_coll, Coll, MpiStack};
use han_machine::{Machine, MachinePreset};
use han_mpi::{execute, ExecOpts};
use han_sim::Time;

/// ASP problem configuration.
#[derive(Debug, Clone, Copy)]
pub struct AspConfig {
    /// Number of vertices `n` (distance values are `i32`).
    pub vertices: usize,
    /// Modelled relaxation throughput, updates/second per rank.
    pub flops: f64,
    /// How many iterations to time (`None` = one full pass: `world_size`
    /// iterations, the paper's Table III choice).
    pub iterations: Option<usize>,
}

impl Default for AspConfig {
    fn default() -> Self {
        AspConfig {
            vertices: 4096,
            flops: 2e9,
            iterations: None,
        }
    }
}

/// Timing breakdown of an ASP run.
#[derive(Debug, Clone, Copy)]
pub struct AspReport {
    pub iterations: usize,
    pub total: Time,
    pub comm: Time,
    pub compute: Time,
}

impl AspReport {
    /// Fraction of the runtime spent communicating (Table III's
    /// "comm ratio").
    pub fn comm_ratio(&self) -> f64 {
        if self.total == Time::ZERO {
            0.0
        } else {
            self.comm.as_ps() as f64 / self.total.as_ps() as f64
        }
    }
}

/// Run (the first iterations of) ASP under `stack` on `preset`.
pub fn run_asp(stack: &dyn MpiStack, preset: &MachinePreset, cfg: &AspConfig) -> AspReport {
    let world = preset.topology.world_size();
    let iters = cfg.iterations.unwrap_or(world).min(cfg.vertices);
    let row_bytes = (cfg.vertices * 4) as u64;
    let rows_per_rank = cfg.vertices.div_ceil(world);
    let per_iter_compute =
        Time::from_secs_f64(rows_per_rank as f64 * cfg.vertices as f64 / cfg.flops);

    let mut machine = Machine::from_preset(preset);
    let opts = ExecOpts::timing(stack.flavor().p2p());
    let mut comm = Time::ZERO;

    // Pivot rows 0..iters: row k is owned by rank k / rows_per_rank; the
    // first `world` iterations make each rank the root at least once when
    // vertices >= world (block ownership with n >= P covers fewer roots per
    // pass, so cycle roots explicitly like the paper's "each process acts
    // as the root process once").
    for k in 0..iters {
        let root = k % world;
        let prog = build_coll(stack, preset, Coll::Bcast, row_bytes, root).expect("bcast");
        comm += execute(&mut machine, &prog, &opts).makespan;
    }
    let compute = per_iter_compute * iters as u64;
    AspReport {
        iterations: iters,
        total: comm + compute,
        comm,
        compute,
    }
}

/// Reference sequential Floyd–Warshall (for verification).
pub fn floyd_warshall(n: usize, w: &[i32]) -> Vec<i32> {
    assert_eq!(w.len(), n * n);
    let mut d = w.to_vec();
    for k in 0..n {
        for i in 0..n {
            let dik = d[i * n + k];
            if dik == i32::MAX {
                continue;
            }
            for j in 0..n {
                let dkj = d[k * n + j];
                if dkj == i32::MAX {
                    continue;
                }
                let cand = dik.saturating_add(dkj);
                if cand < d[i * n + j] {
                    d[i * n + j] = cand;
                }
            }
        }
    }
    d
}

/// Functional parallel ASP: actually runs the row broadcasts through the
/// simulated stack in data mode and performs the relaxations, returning
/// the full distance matrix. Used by tests to prove the collective layer
/// computes correct shortest paths end to end.
pub fn asp_verify(
    stack: &dyn MpiStack,
    preset: &MachinePreset,
    n: usize,
    weights: &[i32],
) -> Vec<i32> {
    let world = preset.topology.world_size();
    assert_eq!(weights.len(), n * n);
    assert!(n % world == 0, "verification requires world | n");
    let rows_per_rank = n / world;
    // Row-block distribution.
    let mut local: Vec<Vec<i32>> = (0..world)
        .map(|r| weights[r * rows_per_rank * n..(r + 1) * rows_per_rank * n].to_vec())
        .collect();

    let mut machine = Machine::from_preset(preset);
    let row_bytes = (n * 4) as u64;
    for k in 0..n {
        let owner = k / rows_per_rank;
        let prog = build_coll(stack, preset, Coll::Bcast, row_bytes, owner).expect("bcast");
        let opts = ExecOpts::with_data(stack.flavor().p2p());
        // The collective's buffers start at offset 0 on every rank.
        let buf = han_mpi::BufRange::new(0, row_bytes);
        let local_ref = &local;
        let (_, mem) = han_mpi::execute_seeded(&mut machine, &prog, &opts, |mm| {
            let row_in_owner = k - owner * rows_per_rank;
            let row = &local_ref[owner][row_in_owner * n..(row_in_owner + 1) * n];
            let bytes: Vec<u8> = row.iter().flat_map(|x| x.to_le_bytes()).collect();
            mm.write(owner, buf, &bytes);
        });
        // Every rank reads the pivot row and relaxes its block.
        for (r, block) in local.iter_mut().enumerate() {
            let got = mem.read(r, buf);
            let pivot: Vec<i32> = got
                .chunks_exact(4)
                .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            for i in 0..rows_per_rank {
                let dik = block[i * n + k];
                if dik == i32::MAX {
                    continue;
                }
                for j in 0..n {
                    if pivot[j] == i32::MAX {
                        continue;
                    }
                    let cand = dik.saturating_add(pivot[j]);
                    if cand < block[i * n + j] {
                        block[i * n + j] = cand;
                    }
                }
            }
        }
    }
    local.concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_colls::TunedOpenMpi;
    use han_core::{Han, HanConfig};
    use han_machine::mini;
    use han_sim::SimRng;

    fn random_weights(n: usize, seed: u64) -> Vec<i32> {
        let mut rng = SimRng::seeded(seed);
        let mut w = vec![0i32; n * n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    w[i * n + j] = 0;
                } else {
                    // Sparse-ish graph: 1/3 of edges missing.
                    w[i * n + j] = if rng.u64(3) == 0 {
                        i32::MAX
                    } else {
                        1 + rng.u64(100) as i32
                    };
                }
            }
        }
        w
    }

    #[test]
    #[allow(clippy::identity_op, clippy::erasing_op)]
    fn sequential_fw_small_graph() {
        // 0 -> 1 (1), 1 -> 2 (2), 0 -> 2 (10): shortest 0->2 is 3.
        let inf = i32::MAX;
        let w = vec![0, 1, 10, inf, 0, 2, inf, inf, 0];
        let d = floyd_warshall(3, &w);
        assert_eq!(d[0 * 3 + 2], 3);
        assert_eq!(d[1 * 3 + 2], 2);
        assert_eq!(d[2 * 3 + 0], inf);
    }

    #[test]
    fn parallel_asp_matches_sequential_with_han() {
        let preset = mini(2, 2);
        let n = 8;
        let w = random_weights(n, 42);
        let expect = floyd_warshall(n, &w);
        let han = Han::with_config(HanConfig::default().with_fs(16));
        let got = asp_verify(&han, &preset, n, &w);
        assert_eq!(got, expect);
    }

    #[test]
    fn parallel_asp_matches_sequential_with_tuned() {
        let preset = mini(2, 2);
        let n = 8;
        let w = random_weights(n, 7);
        let expect = floyd_warshall(n, &w);
        let got = asp_verify(&TunedOpenMpi, &preset, n, &w);
        assert_eq!(got, expect);
    }

    #[test]
    fn timing_report_consistency() {
        let preset = mini(2, 4);
        let cfg = AspConfig {
            vertices: 512,
            flops: 1e9,
            iterations: Some(8),
        };
        let rep = run_asp(&TunedOpenMpi, &preset, &cfg);
        assert_eq!(rep.iterations, 8);
        assert_eq!(rep.total, rep.comm + rep.compute);
        assert!(rep.comm > Time::ZERO);
        assert!(rep.comm_ratio() > 0.0 && rep.comm_ratio() < 1.0);
    }

    #[test]
    fn han_reduces_comm_ratio_vs_tuned() {
        let preset = mini(4, 4);
        let cfg = AspConfig {
            vertices: 2048,
            flops: 2e9,
            iterations: Some(16),
        };
        let tuned = run_asp(&TunedOpenMpi, &preset, &cfg);
        let han = run_asp(
            &Han::with_config(HanConfig::default().with_fs(8 * 1024)),
            &preset,
            &cfg,
        );
        assert!(
            han.comm < tuned.comm,
            "HAN comm {} should beat tuned {}",
            han.comm,
            tuned.comm
        );
        assert!(han.comm_ratio() < tuned.comm_ratio());
        // Same compute model on both stacks.
        assert_eq!(han.compute, tuned.compute);
    }
}
