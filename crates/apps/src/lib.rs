//! # han-apps — the applications of the paper's evaluation (section IV-B)
//!
//! * [`asp`] — ASP, a parallel Floyd–Warshall all-pairs-shortest-path
//!   solver: row-block distribution, one `MPI_Bcast` of the pivot row per
//!   iteration, processes taking turns as root. Bcast dominates
//!   communication (Table III).
//! * [`horovod`] — a Horovod-style synchronous data-parallel trainer:
//!   per-step gradient averaging via `MPI_Allreduce` over fused gradient
//!   buffers (Fig. 15, AlexNet/tf_cnn_benchmarks-like configuration).
//!
//! Both applications are generic over [`han_colls::MpiStack`], so every
//! stack in the paper's comparison — HAN, default Open MPI, Cray MPI,
//! Intel MPI, MVAPICH2 — runs the identical application code. Computation
//! is modelled (virtual seconds per unit of work) while communication runs
//! through the full simulated stack; data-mode tests verify the actual
//! shortest-path and gradient arithmetic at small scale.

pub mod asp;
pub mod horovod;

pub use asp::{run_asp, AspConfig, AspReport};
pub use horovod::{run_horovod, HorovodConfig, HorovodReport};
