//! Offline stand-in for `criterion`.
//!
//! Implements the macro and type surface the workspace benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput` —
//! over a simple wall-clock harness: a short warm-up, then `sample_size`
//! timed samples, reporting median time per iteration (and derived
//! throughput) on stdout. No HTML reports, statistics, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Measurement collector passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Time `routine`, running enough iterations per sample to get a
    /// stable reading without taking forever on slow routines.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: aim for samples of at least ~2 ms or 1 iteration,
        // whichever is larger.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(2);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }

    fn median_ns_per_iter(&self) -> f64 {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return 0.0;
        }
        let mut ns: Vec<u128> = self.samples.iter().map(|d| d.as_nanos()).collect();
        ns.sort_unstable();
        ns[ns.len() / 2] as f64 / self.iters_per_sample as f64
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 0,
            sample_count: self.sample_size.min(20),
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 0,
            sample_count: self.sample_size.min(20),
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let ns = b.median_ns_per_iter();
        let mut line = format!("{}/{}: {}", self.name, id.name, format_ns(ns));
        if let Some(tp) = &self.throughput {
            let per_sec = if ns > 0.0 { 1e9 / ns } else { 0.0 };
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  ({:.3e} elem/s)", per_sec * *n as f64));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  ({:.3e} B/s)", per_sec * *n as f64));
                }
            }
        }
        println!("{line}");
    }

    pub fn finish(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// `black_box` re-export point (benches often use `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            let _ = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (e.g. `--bench`); ignore them.
            $( $group(); )+
        }
    };
}
