//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this environment, so the
//! workspace vendors a minimal serde data model (`vendor/serde`) built
//! around a JSON-like `Value` enum, and this proc-macro derives its two
//! traits. It parses the item token stream by hand (no `syn`/`quote`) and
//! supports exactly the shapes this workspace uses:
//!
//! * structs with named fields        -> `Value::Map` keyed by field name
//! * tuple structs with one field     -> transparent newtype (inner value)
//! * tuple structs with N > 1 fields  -> `Value::Seq`
//! * enums with only unit variants    -> `Value::Str(variant name)`
//!
//! Anything else (generics, data-carrying enum variants) produces a
//! `compile_error!` naming the unsupported construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    /// Unit variants, in declaration order.
    Enum(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => render(&name, &shape, mode).parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (doc comments arrive as `#[doc = ...]`) and
    // visibility qualifiers.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                    i += 1;
                }
                i += 1; // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1; // pub(crate) etc.
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stub derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stub derive: expected type name".into()),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub derive: generic type `{name}` is not supported"
        ));
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) => g,
        _ => {
            return Err(format!(
                "serde stub derive: `{name}` has no body (unit structs unsupported)"
            ))
        }
    };

    match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => {
            Ok((name, Shape::Struct(parse_named_fields(body.stream())?)))
        }
        ("struct", Delimiter::Parenthesis) => {
            Ok((name, Shape::Tuple(count_tuple_fields(body.stream()))))
        }
        ("enum", Delimiter::Brace) => {
            let variants = parse_unit_variants(body.stream(), &name)?;
            Ok((name, Shape::Enum(variants)))
        }
        _ => Err(format!("serde stub derive: unsupported shape for `{name}`")),
    }
}

/// Field names of a `{ ... }` struct body. Commas inside `<...>` type
/// arguments appear at the top level of the token stream, so angle-bracket
/// depth is tracked to find real field boundaries.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip per-field attributes and visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err("serde stub derive: expected `:` after field name".into()),
        }
        // Skip the type up to the next top-level comma.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for t in body {
        any = true;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => commas += 1,
                _ => {}
            }
        }
    }
    if !any {
        0
    } else {
        commas + 1
    }
}

fn parse_unit_variants(body: TokenStream, name: &str) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2; // attribute
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        variants.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde stub derive: enum `{name}` has a data-carrying variant \
                     `{}`, only unit variants are supported",
                    variants.last().unwrap()
                ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the next comma.
                while i < tokens.len()
                    && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
                {
                    i += 1;
                }
                i += 1;
            }
            _ => return Err(format!("serde stub derive: malformed enum `{name}`")),
        }
    }
    Ok(variants)
}

fn render(name: &str, shape: &Shape, mode: Mode) -> String {
    match mode {
        Mode::Serialize => render_serialize(name, shape),
        Mode::Deserialize => render_deserialize(name, shape),
    }
}

fn render_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(fields) => {
            let mut s = String::from(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                s.push_str(&format!(
                    "__m.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            s.push_str("::serde::Value::Map(__m)");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let mut s = String::from(
                "let mut __s: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();\n",
            );
            for i in 0..*n {
                s.push_str(&format!(
                    "__s.push(::serde::Serialize::to_value(&self.{i}));\n"
                ));
            }
            s.push_str("::serde::Value::Seq(__s)");
            s
        }
        Shape::Enum(variants) => {
            let mut s = String::from("::serde::Value::Str(match self {\n");
            for v in variants {
                s.push_str(&format!("{name}::{v} => {v:?}.to_string(),\n"));
            }
            s.push_str("})");
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn render_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(fields) => {
            let mut s = String::from("match __v {\n::serde::Value::Map(__m) => Ok(Self {\n");
            for f in fields {
                s.push_str(&format!("{f}: ::serde::__field(__m, {f:?})?,\n"));
            }
            s.push_str(&format!(
                "}}),\n_ => Err(::serde::Error::custom(concat!(\"expected map for struct \", \
                 stringify!({name})))),\n}}"
            ));
            s
        }
        Shape::Tuple(1) => "Ok(Self(::serde::Deserialize::from_value(__v)?))".to_string(),
        Shape::Tuple(n) => {
            let mut s =
                format!("match __v {{\n::serde::Value::Seq(__s) if __s.len() == {n} => Ok(Self(\n");
            for i in 0..*n {
                s.push_str(&format!("::serde::Deserialize::from_value(&__s[{i}])?,\n"));
            }
            s.push_str(&format!(
                ")),\n_ => Err(::serde::Error::custom(concat!(\"expected seq for tuple struct \", \
                 stringify!({name})))),\n}}"
            ));
            s
        }
        Shape::Enum(variants) => {
            let mut s =
                String::from("match __v {\n::serde::Value::Str(__s) => match __s.as_str() {\n");
            for v in variants {
                s.push_str(&format!("{v:?} => Ok({name}::{v}),\n"));
            }
            s.push_str(&format!(
                "__other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{__other}}` for enum {name}\"))),\n}},\n\
                 _ => Err(::serde::Error::custom(concat!(\"expected string for enum \", \
                 stringify!({name})))),\n}}"
            ));
            s
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
         {{\n{body}\n}}\n}}\n"
    )
}
