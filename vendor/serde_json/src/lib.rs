//! Offline stand-in for `serde_json`: prints and parses the vendored
//! serde's [`Value`] tree as JSON text. Covers the subset this workspace
//! uses — `to_string`, `to_string_pretty`, `from_str`, and `Value`
//! indexing — with standard JSON syntax (no comments, no NaN/Infinity).

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Parse or conversion error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(Error::new)
}

// ---------------------------------------------------------------------
// Printer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // Keep floats distinguishable from ints on re-parse.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_seq(out, items, indent, depth, ('[', ']'), |out, item, d| {
            write_value(out, item, indent, d)
        }),
        Value::Map(entries) => {
            write_seq(out, entries, indent, depth, ('{', '}'), |out, (k, v), d| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, d);
            })
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    items: &[T],
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, &T, usize),
) {
    out.push(brackets.0);
    if items.is_empty() {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs unsupported; BMP only.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 char (at most 4 bytes —
                    // never re-validate the whole remaining input).
                    let end = (self.pos + 4).min(self.bytes.len());
                    let chunk = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(chunk) {
                        Ok(s) => s.chars().next().unwrap(),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&chunk[..e.valid_up_to()])
                                .unwrap()
                                .chars()
                                .next()
                                .unwrap()
                        }
                        Err(_) => return Err(Error::new("invalid utf-8")),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(7)),
            (
                "b".into(),
                Value::Seq(vec![Value::Int(-3), Value::Float(1.5)]),
            ),
            ("c".into(), Value::Str("x\"y\n".into())),
            ("d".into(), Value::Null),
            ("e".into(), Value::Bool(true)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn index_missing_is_null() {
        let v: Value = from_str("{\"k\": [1, 2]}").unwrap();
        assert_eq!(v["k"][0], Value::UInt(1));
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["k"][9], Value::Null);
    }

    #[test]
    fn floats_reparse_as_floats() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 2.0);
    }
}
