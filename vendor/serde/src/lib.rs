//! Offline stand-in for `serde`.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! the workspace vendors a minimal replacement. Instead of serde's
//! visitor-based architecture, everything funnels through a JSON-like
//! [`Value`] tree: [`Serialize`] renders a type into a `Value`,
//! [`Deserialize`] rebuilds it from one. `vendor/serde_json` prints and
//! parses that tree. The API surface is exactly what this workspace uses —
//! derive macros for plain structs/enums, impls for the primitive and
//! container types that appear in derived fields — not a general serde.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// A JSON-like tree, the interchange format between [`Serialize`] and
/// [`Deserialize`]. Maps preserve insertion order so derived structs
/// round-trip with stable field order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (negative literals parse into this).
    Int(i64),
    /// Unsigned integers; `u64` values above `i64::MAX` stay exact.
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Seq(s) => s.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Helper used by the derive macro: look up a struct field by name.
/// A missing key behaves like `Null` so `Option<T>` fields tolerate
/// older serialized files that predate them.
pub fn __field<T: Deserialize>(map: &[(String, Value)], key: &str) -> Result<T, Error> {
    let v = map
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL);
    T::from_value(v).map_err(|e| Error::custom(format!("field `{key}`: {e}")))
}

// ---------------------------------------------------------------------
// Serialize impls

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Map(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------
// Deserialize impls

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

/// `&'static str` fields (e.g. preset names) deserialize by leaking the
/// parsed string; acceptable for the handful of small config strings this
/// workspace reads per process.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected map")),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(s) if s.len() == $len => {
                        Ok(($($t::from_value(&s[$n])?,)+))
                    }
                    _ => Err(Error::custom(concat!("expected ", stringify!($len), "-tuple"))),
                }
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
    (6; 0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}
