//! Strategies: samplers over a value domain.
//!
//! Unlike real proptest there is no value tree and no shrinking — a
//! strategy is just a deterministic-RNG sampler. Combinators mirror the
//! upstream names so test code is source-compatible.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    fn prop_filter_map<U, F>(self, whence: impl Into<String>, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = Rc::new(self);
        BoxedStrategy {
            sample: Rc::new(move |rng| inner.sample(rng)),
        }
    }
}

/// How many times filtering strategies retry before giving up.
const MAX_FILTER_RETRIES: usize = 10_000;

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}`: rejection budget exhausted", self.whence);
    }
}

pub struct FilterMap<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        for _ in 0..MAX_FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map `{}`: rejection budget exhausted",
            self.whence
        );
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Type-erased strategy (`Rc`-shared, so `prop_oneof!` arms can be mixed).
pub struct BoxedStrategy<T> {
    sample: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sample: Rc::clone(&self.sample),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// Uniform choice among alternatives (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.0.random_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

/// `any::<T>()`: the full domain of `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub struct AnyStrategy<T> {
    sample: fn(&mut TestRng) -> T,
}

impl<T> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

macro_rules! arbitrary_via_random {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy { sample: |rng| rng.0.random() }
            }
        }
    )*};
}
arbitrary_via_random!(bool, u32, u64, usize, f64);

impl Arbitrary for u8 {
    type Strategy = AnyStrategy<u8>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy {
            sample: |rng| rng.0.random::<u32>() as u8,
        }
    }
}

impl Arbitrary for u16 {
    type Strategy = AnyStrategy<u16>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy {
            sample: |rng| rng.0.random::<u32>() as u16,
        }
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u32, u64, usize, i32, i64, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}
