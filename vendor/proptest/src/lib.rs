//! Offline stand-in for `proptest`.
//!
//! Property tests run against deterministic pseudo-random inputs: each
//! `proptest!` test derives its RNG seed from the test function's name, so
//! every run (and every CI machine) sees the same cases. There is **no
//! shrinking** — a failing case panics with the sampled inputs' debug
//! representation via the ordinary `assert!` machinery — and no failure
//! persistence. The [`strategy::Strategy`] combinators cover the subset
//! this workspace uses: ranges, `Just`, `any`, `prop_map`, `prop_filter`,
//! `prop_filter_map`, `prop_oneof!`, tuples, and `collection::vec`.

pub mod strategy;

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Per-test RNG, seeded from the test name for determinism.
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }
    }

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Number-of-elements specification for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.0.random_range(self.size.lo..=self.size.hi)
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are sampled from
/// strategies. Supports an optional `#![proptest_config(...)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$attr:meta])* fn $name:ident ($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// Union of heterogeneous strategies with a common `Value`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
