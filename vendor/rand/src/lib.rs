//! Offline stand-in for `rand` 0.9.
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++ seeded through splitmix64,
//! matching the statistical quality class of the real `SmallRng`) and the
//! 0.9-era [`Rng`] / [`SeedableRng`] API subset this workspace calls:
//! `seed_from_u64`, `random::<T>()`, `random_range(..)` over integer and
//! float ranges (half-open and inclusive), and `fill(&mut [u8])`.
//! Distributions match the real crate's contracts (uniform, unbiased via
//! rejection for integers, 53-bit mantissa floats in `[0, 1)`), though the
//! exact output streams differ — nothing in this workspace depends on the
//! upstream bit streams, only on determinism per seed.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 uniformly random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling API (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.random()`).
pub trait StandardUniform {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardUniform for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl StandardUniform for usize {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl StandardUniform for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with `rng.random_range(..)`.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer in `[0, span)` by rejection sampling.
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
int_range!(u32, u64, usize);

macro_rules! signed_int_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
signed_int_range!(i32: u32, i64: u64, isize: usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}
impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in random_range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; the same
    /// algorithm family the real `SmallRng` uses on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(
            SmallRng::seed_from_u64(42).random::<u64>(),
            c.random::<u64>()
        );
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for i in 0..1000u64 {
            let v = r.random_range(0..(i + 1));
            assert!(v <= i);
            let f = r.random_range(-1.5..=1.5);
            assert!((-1.5..=1.5).contains(&f));
            let u = r.random_range(0usize..=i as usize);
            assert!(u <= i as usize);
            let x = r.random_range(3.0..5.0);
            assert!((3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn fill_covers_buffer() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} not ~0.5");
    }
}
