//! Quickstart: build a simulated cluster, run HAN vs default Open MPI, and
//! autotune HAN's configuration.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use han::prelude::*;
use std::sync::Arc;

fn main() {
    // A small simulated cluster: 4 nodes x 8 ranks (the `mini` preset
    // keeps every qualitative behaviour of the paper's testbeds).
    let preset = mini(4, 8);
    println!(
        "machine: {} nodes x {} ranks = {} processes\n",
        preset.topology.nodes(),
        preset.topology.ppn(),
        preset.topology.world_size()
    );

    // 1. Compare a fixed HAN configuration against default Open MPI.
    let cfg = HanConfig::default().with_fs(128 * 1024);
    println!("HAN configuration: {cfg}\n");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>7}",
        "size", "HAN", "tuned OMPI", "speedup"
    );
    for bytes in [4 * 1024u64, 64 * 1024, 1 << 20, 16 << 20] {
        let t_han = time_coll(&Han::with_config(cfg), &preset, Coll::Bcast, bytes, 0).unwrap();
        let t_tuned = time_coll(&TunedOpenMpi, &preset, Coll::Bcast, bytes, 0).unwrap();
        println!(
            "{:>8}  {:>12}  {:>12}  {:>6.2}x",
            bytes,
            t_han.to_string(),
            t_tuned.to_string(),
            t_tuned.as_ps() as f64 / t_han.as_ps() as f64
        );
    }

    // 2. Autotune: benchmark tasks once, pick per-size configurations.
    println!("\nautotuning (task-based + heuristics)...");
    let mut space = SearchSpace::standard();
    space.msg_sizes.retain(|&m| (1024..=16 << 20).contains(&m));
    let result = tune(
        &preset,
        &space,
        &[Coll::Bcast],
        Strategy::TaskBasedHeuristic,
    );
    println!(
        "tuned {} message sizes with {} benchmark runs ({} virtual benchmark time)",
        result.table.sampled_sizes(Coll::Bcast).len(),
        result.searches,
        result.tuning_time
    );

    // 3. Run HAN with the tuned decision table.
    let han = Han::tuned(Arc::new(result.table));
    println!("\n{:>8}  {:>12}  (autotuned HAN)", "size", "latency");
    for bytes in [4 * 1024u64, 1 << 20, 16 << 20] {
        let t = time_coll(&han, &preset, Coll::Bcast, bytes, 0).unwrap();
        println!("{:>8}  {:>12}", bytes, t.to_string());
    }
}
