//! ASP: all-pairs shortest paths via parallel Floyd–Warshall — the paper's
//! first application study (Table III).
//!
//! Runs the broadcast-dominated ASP kernel under four MPI stacks on a
//! simulated cluster, verifies the distances against a sequential solver
//! at small scale, and reports the communication-ratio breakdown.
//!
//! ```text
//! cargo run --release --example asp_shortest_paths
//! ```

use han::apps::asp::{asp_verify, floyd_warshall, run_asp, AspConfig};
use han::prelude::*;
use han::sim::SimRng;

fn main() {
    // --- correctness: the parallel pipeline computes real shortest paths.
    let preset = mini(2, 2);
    let n = 16;
    let mut rng = SimRng::seeded(2020);
    let mut w = vec![i32::MAX; n * n];
    for i in 0..n {
        w[i * n + i] = 0;
        for j in 0..n {
            if i != j && rng.u64(100) < 60 {
                w[i * n + j] = 1 + rng.u64(50) as i32;
            }
        }
    }
    let han = Han::with_config(HanConfig::default().with_fs(32));
    let parallel = asp_verify(&han, &preset, n, &w);
    let sequential = floyd_warshall(n, &w);
    assert_eq!(
        parallel, sequential,
        "parallel ASP must match Floyd-Warshall"
    );
    println!("correctness: parallel ASP == sequential Floyd-Warshall on {n} vertices\n");

    // --- performance: comm/compute breakdown per MPI stack.
    let preset = mini(8, 8);
    let cfg = AspConfig {
        vertices: 8192,
        flops: 1.5e9,
        iterations: Some(64),
    };
    println!(
        "ASP on {} procs, {} vertices, first {} iterations:",
        preset.topology.world_size(),
        cfg.vertices,
        cfg.iterations.unwrap()
    );
    println!(
        "{:>20}  {:>10}  {:>10}  {:>8}  {:>8}",
        "stack", "total", "comm", "comm %", "speedup"
    );
    let han = Han::with_config(HanConfig::default().with_fs(16 * 1024));
    let stacks: Vec<(&str, &dyn MpiStack)> =
        vec![("HAN", &han), ("default Open MPI", &TunedOpenMpi)];
    let mut base_total = None;
    for (name, stack) in stacks {
        let rep = run_asp(stack, &preset, &cfg);
        let base = *base_total.get_or_insert(rep.total);
        println!(
            "{:>20}  {:>10}  {:>10}  {:>7.1}%  {:>7.2}x",
            name,
            format!("{}", rep.total),
            format!("{}", rep.comm),
            100.0 * rep.comm_ratio(),
            rep.total.as_ps() as f64 / base.as_ps() as f64,
        );
    }
    println!("\n(HAN's faster broadcast shrinks the communication share, as in Table III)");
}
