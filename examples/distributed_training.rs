//! Horovod-style synchronous data-parallel training — the paper's second
//! application study (Fig. 15).
//!
//! Sweeps the process count and reports training throughput (images/s)
//! under HAN and default Open MPI, showing the allreduce-bound scaling gap
//! widen with scale.
//!
//! ```text
//! cargo run --release --example distributed_training
//! ```

use han::apps::horovod::{run_horovod, HorovodConfig};
use han::prelude::*;
use han::tuner::{tune, SearchSpace, Strategy};
use std::sync::Arc;

fn main() {
    let hv = HorovodConfig {
        grad_bytes: 64 << 20,
        fusion_bytes: 32 << 20,
        time_per_image: Time::from_ms(40),
        batch_per_rank: 4,
    };
    println!(
        "gradient {}B, fusion {}B, {} images/rank/step\n",
        hv.grad_bytes, hv.fusion_bytes, hv.batch_per_rank
    );
    println!(
        "{:>7}  {:>12}  {:>12}  {:>9}",
        "procs", "HAN img/s", "tuned img/s", "HAN gain"
    );

    for nodes in [1usize, 2, 4, 8] {
        let preset = mini(nodes, 8);
        // Autotune HAN's allreduce for this scale.
        let mut space = SearchSpace::standard();
        space
            .msg_sizes
            .retain(|&m| m >= 1 << 20 && m <= hv.fusion_bytes);
        let tuned = tune(
            &preset,
            &space,
            &[Coll::Allreduce],
            Strategy::TaskBasedHeuristic,
        );
        let han = Han::tuned(Arc::new(tuned.table));

        let h = run_horovod(&han, &preset, &hv);
        let t = run_horovod(&TunedOpenMpi, &preset, &hv);
        println!(
            "{:>7}  {:>12.1}  {:>12.1}  {:>8.1}%",
            h.procs,
            h.images_per_sec,
            t.images_per_sec,
            100.0 * (h.images_per_sec / t.images_per_sec - 1.0)
        );
    }
    println!("\n(the gap widens with scale, as in Fig. 15)");
}
