//! Building a custom collective from HAN's task machinery.
//!
//! The paper's pitch is that hierarchical collectives are *compositions of
//! tasks over submodules*. This example composes a "reduce-then-broadcast
//! to a different root" operation (an allreduce variant MPI does not
//! provide) directly from the public frontier-based builders, runs it in
//! data mode, and verifies the arithmetic.
//!
//! ```text
//! cargo run --release --example custom_collective
//! ```

// Verification loops index several per-rank buffers by rank on purpose.
#![allow(clippy::needless_range_loop)]

use han::colls::stack::BuildCtx;
use han::core::bcast::build_bcast;
use han::core::extend::build_reduce;
use han::prelude::*;

fn main() {
    let preset = mini(3, 3);
    let n = preset.topology.world_size();
    let comm = Comm::world(n);
    let cfg = HanConfig::default().with_fs(64);

    // Program: reduce everything to rank 1, then broadcast from rank 7.
    let bytes = 256u64;
    let mut b = ProgramBuilder::new(n);
    let bufs = b.alloc_all(bytes);
    let mut cx = BuildCtx::new(&mut b, &preset);
    let deps = Frontier::empty(n);
    let after_reduce = build_reduce(
        &mut cx,
        &cfg,
        &comm,
        1,
        &bufs,
        ReduceOp::Sum,
        DataType::Int32,
        &deps,
    );
    // Move the reduction result from rank 1 to the new root 7, then fan out.
    let (snd, rcv) = cx.b.send_recv(
        1,
        7,
        bytes,
        Some(bufs[1]),
        Some(bufs[7]),
        after_reduce.get(1),
        after_reduce.get(7),
    );
    let mut mid = after_reduce.clone();
    mid.set(1, vec![snd]);
    mid.set(7, vec![rcv]);
    build_bcast(&mut cx, &cfg, &comm, 7, &bufs, &mid);
    let prog = b.build();
    println!("program: {} ops over {} ranks", prog.len(), n);

    // Run with real data: every rank contributes (rank+1) per element.
    let mut machine = Machine::from_preset(&preset);
    let opts = ExecOpts::with_data(Flavor::OpenMpi.p2p());
    let bufs2 = bufs.clone();
    let (report, mem) = han::mpi::execute_seeded(&mut machine, &prog, &opts, |mm| {
        for r in 0..n {
            let vals: Vec<u8> = (0..bytes / 4)
                .flat_map(|_| ((r + 1) as i32).to_le_bytes())
                .collect();
            mm.write(r, bufs2[r], &vals);
        }
    });

    let expect = (n * (n + 1) / 2) as i32;
    for r in 0..n {
        let out = mem.read(r, bufs[r]);
        assert!(out
            .chunks_exact(4)
            .all(|c| i32::from_le_bytes(c.try_into().unwrap()) == expect));
    }
    println!("every rank holds the sum {expect} — custom collective verified");
    println!("virtual completion time: {}", report.makespan);
}
