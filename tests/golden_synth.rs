//! Golden-file regression for schedule synthesis: the full Pareto fronts
//! of a reduced-scale synthesis run on two machine shapes are pinned in
//! `tests/golden/synth_fronts.json`. Any change to the simulator, the
//! builders, the candidate enumeration, or the search that shifts a
//! front point — or its costs beyond a float tolerance — fails here
//! with a diff.
//!
//! To re-bless after an *intentional* change:
//!
//! ```text
//! HAN_BLESS=1 cargo test --test golden_synth
//! ```

use han::prelude::*;
use han::synth::synthesize;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// One pinned front point. The config is pinned by its display form —
/// stable, diff-friendly, and exactly as reports print it.
#[derive(Debug, Serialize, Deserialize)]
struct GoldenPoint {
    preset: String,
    coll: String,
    m: u64,
    cfg: String,
    menu: bool,
    lat_ps: u64,
    bw_ps: u64,
}

/// Costs must match within 0.01%; the point set, its order, and every
/// config must match exactly.
const COST_RTOL: f64 = 1e-4;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/synth_fronts.json")
}

fn synth_fronts() -> Vec<GoldenPoint> {
    let presets = [mini(2, 2), mini3(2, 2, 2)];
    let space = SearchSpace {
        msg_sizes: vec![16 * 1024, 256 * 1024, 2 << 20],
        seg_sizes: vec![32 * 1024, 256 * 1024],
        inter: vec![
            (InterModule::Libnbc, InterAlg::Binomial),
            (InterModule::Adapt, InterAlg::Binomial),
            (InterModule::Adapt, InterAlg::Chain),
        ],
        intra: vec![IntraModule::Sm, IntraModule::Solo],
    };
    let mut out = Vec::new();
    for preset in &presets {
        let r = synthesize(
            preset,
            &space,
            &[Coll::Bcast, Coll::Allreduce, Coll::Reduce],
            SynthOpts::default(),
        );
        assert!(r.skipped.is_empty(), "unexpected skips: {:?}", r.skipped);
        for f in &r.fronts {
            for p in &f.points {
                out.push(GoldenPoint {
                    preset: preset.name.to_string(),
                    coll: f.coll.name().to_string(),
                    m: f.m,
                    cfg: p.cfg.to_string(),
                    menu: p.menu,
                    lat_ps: p.lat_ps,
                    bw_ps: p.bw_ps,
                });
            }
        }
    }
    out
}

#[test]
fn synth_front_matches_golden() {
    let got = synth_fronts();
    let path = golden_path();
    if std::env::var("HAN_BLESS").is_ok() {
        let json = serde_json::to_string_pretty(&got).unwrap();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, json + "\n").unwrap();
        println!("blessed {} points into {}", got.len(), path.display());
        return;
    }
    let golden: Vec<GoldenPoint> =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run HAN_BLESS=1",
                path.display()
            )
        }))
        .expect("golden file parses");

    assert_eq!(
        got.len(),
        golden.len(),
        "front point count changed (got {}, golden {})",
        got.len(),
        golden.len()
    );
    for (g, want) in got.iter().zip(&golden) {
        assert_eq!(
            (g.preset.as_str(), g.coll.as_str(), g.m),
            (want.preset.as_str(), want.coll.as_str(), want.m),
            "fronts reordered"
        );
        assert_eq!(
            (g.cfg.as_str(), g.menu),
            (want.cfg.as_str(), want.menu),
            "front point changed for {}/{} m={}: got [{}], golden [{}]",
            g.preset,
            g.coll,
            g.m,
            g.cfg,
            want.cfg
        );
        for (what, gv, wv) in [("lat", g.lat_ps, want.lat_ps), ("bw", g.bw_ps, want.bw_ps)] {
            let rel = (gv as f64 - wv as f64).abs() / (wv.max(1) as f64);
            assert!(
                rel <= COST_RTOL,
                "{what} cost drifted for {}/{} m={} [{}]: got {gv} ps, golden {wv} ps (rel {rel:.2e})",
                g.preset,
                g.coll,
                g.m,
                g.cfg
            );
        }
    }
}
