//! Execution-mode and cost-cache equivalence guarantees.
//!
//! `ExecMode::TimingOnly` exists purely to save host wall-clock: it skips
//! every payload read/copy but must leave the simulated schedule — and
//! therefore every virtual timestamp — untouched. Likewise a warm
//! `CostCache` must return exactly what a cold simulation would have
//! produced. These tests pin both guarantees.

use han::prelude::*;
use han::tuner::{tune_with_cache, CostCache};
use han_tuner::search::achieved_latency_with_cache;
use std::sync::Arc;

const ALL_COLLS: [Coll; 7] = [
    Coll::Bcast,
    Coll::Allreduce,
    Coll::Reduce,
    Coll::Gather,
    Coll::Scatter,
    Coll::Allgather,
    Coll::Barrier,
];

/// TimingOnly and Full executions of the same program must agree on the
/// makespan and the number of simulated events — across every collective,
/// both machine flavors, and multiple message sizes.
#[test]
fn timing_only_matches_full_virtual_times() {
    let presets = [shaheen2_ppn(4, 4), stampede2_ppn(3, 4), mini(2, 8)];
    let stack = Han::with_config(HanConfig::default().with_fs(64 * 1024));
    for preset in &presets {
        for coll in ALL_COLLS {
            for bytes in [4u64, 64 * 1024, 1 << 20] {
                let prog = build_coll(&stack, preset, coll, bytes, 0)
                    .expect("HAN implements all collectives");
                let p2p = stack.flavor().p2p();
                let mut m1 = Machine::from_preset(preset);
                let timing = han::mpi::execute(
                    &mut m1,
                    &prog,
                    &ExecOpts::with_mode(p2p, ExecMode::TimingOnly),
                );
                let mut m2 = Machine::from_preset(preset);
                let full =
                    han::mpi::execute(&mut m2, &prog, &ExecOpts::with_mode(p2p, ExecMode::Full));
                assert_eq!(
                    timing.makespan, full.makespan,
                    "{} {coll:?} {bytes}B: TimingOnly makespan must equal Full",
                    preset.name
                );
                assert_eq!(
                    timing.events, full.events,
                    "{} {coll:?} {bytes}B: event counts must match",
                    preset.name
                );
            }
        }
    }
}

fn tiny_space() -> SearchSpace {
    let mut space = SearchSpace::standard();
    space.msg_sizes = vec![64 * 1024, 1 << 20];
    space.seg_sizes = vec![64 * 1024, 256 * 1024];
    space
}

fn assert_same_result(a: &han_tuner::TuneResult, b: &han_tuner::TuneResult, what: &str) {
    assert_eq!(a.tuning_time, b.tuning_time, "{what}: tuning_time differs");
    assert_eq!(a.searches, b.searches, "{what}: search count differs");
    assert_eq!(a.samples, b.samples, "{what}: samples differ");
    for coll in [Coll::Bcast, Coll::Allreduce] {
        for &m in &a.table.sampled_sizes(coll) {
            let ea = a.table.get(coll, m).expect("entry in a");
            let eb = b.table.get(coll, m).expect("entry in b");
            assert_eq!(ea.cfg, eb.cfg, "{what}: {coll:?}@{m} picked config differs");
            assert_eq!(ea.cost_ps, eb.cost_ps, "{what}: {coll:?}@{m} cost differs");
        }
    }
}

/// A warm cache must reproduce the cold run bit-for-bit: same winning
/// configurations, same virtual tuning time, same search count — for both
/// the exhaustive and the task-based strategies.
#[test]
fn warm_cache_returns_same_winners() {
    let preset = mini(4, 4);
    let space = tiny_space();
    let colls = [Coll::Bcast, Coll::Allreduce];
    for strategy in Strategy::ALL {
        let uncached = tune_with_cache(&preset, &space, &colls, strategy, None);
        let cache = Arc::new(CostCache::new(&preset));
        let cold = tune_with_cache(&preset, &space, &colls, strategy, Some(cache.clone()));
        let warm = tune_with_cache(&preset, &space, &colls, strategy, Some(cache.clone()));
        assert!(
            cache.stats().hits > 0,
            "{strategy:?}: second run should hit the cache"
        );
        assert_same_result(&uncached, &cold, &format!("{strategy:?} uncached vs cold"));
        assert_same_result(&cold, &warm, &format!("{strategy:?} cold vs warm"));
    }
}

/// Achieved-latency probes must also be cache-transparent, including when
/// the hit comes from entries recorded by a prior exhaustive sweep.
#[test]
fn achieved_latency_is_cache_transparent() {
    let preset = mini(4, 4);
    let space = tiny_space();
    let colls = [Coll::Bcast, Coll::Allreduce];
    let cache = Arc::new(CostCache::new(&preset));
    let tuned = tune_with_cache(
        &preset,
        &space,
        &colls,
        Strategy::Exhaustive,
        Some(cache.clone()),
    );
    for coll in colls {
        for &m in &space.msg_sizes {
            let plain = achieved_latency_with_cache(&preset, &tuned.table, coll, m, None);
            let hits_before = cache.stats().hits;
            let cached = achieved_latency_with_cache(&preset, &tuned.table, coll, m, Some(&cache));
            assert_eq!(plain, cached, "{coll:?}@{m}: cached probe must match");
            assert!(
                cache.stats().hits > hits_before,
                "{coll:?}@{m}: probe should reuse the sweep's recorded cost"
            );
        }
    }
}
