//! Template-interning equivalence: a program re-stamped from an interned
//! template must be **bit-identical** to a cold `build_coll` of the same
//! size — same ops, same scalars, and therefore the same makespan, op
//! finish times and event counts when executed.

use han::colls::stack::{build_coll, Coll};
use han::colls::TemplateStore;
use han::machine::socketize;
use han::mpi::{execute, OpId};
use han::prelude::{
    mini, ExecOpts, Han, HanConfig, InterAlg, InterModule, IntraModule, Machine, MpiStack,
};
use proptest::prelude::*;

fn arb_config() -> impl proptest::strategy::Strategy<Value = HanConfig> {
    (
        1u64..=4096,
        prop_oneof![Just(InterModule::Libnbc), Just(InterModule::Adapt)],
        prop_oneof![Just(IntraModule::Sm), Just(IntraModule::Solo)],
        prop_oneof![
            Just(InterAlg::Chain),
            Just(InterAlg::Binary),
            Just(InterAlg::Binomial)
        ],
        prop_oneof![Just(None), (64u64..=2048).prop_map(Some)],
        prop_oneof![Just(None), (64u64..=2048).prop_map(Some)],
    )
        .prop_map(|(fs, imod, smod, alg, ibs, irs)| HanConfig {
            fs,
            imod,
            smod,
            ibalg: alg,
            iralg: alg,
            ibs,
            irs,
            deep: [None; han::core::MAX_DEEP],
            route: None,
        })
}

/// Build `coll` at every size through one shared store and cross-check
/// each program and its execution against a cold build.
fn assert_store_matches_cold(preset: &han::machine::MachinePreset, cfg: HanConfig, sizes: &[u64]) {
    let han = Han::with_config(cfg);
    let store = TemplateStore::new();
    let mut machine = Machine::from_preset(preset);
    for coll in Coll::ALL {
        for &m in sizes {
            let cold = match build_coll(&han, preset, coll, m, 0) {
                Ok(p) => p,
                Err(_) => continue, // unsupported combination: nothing to compare
            };
            let warm = store
                .build(&han, preset, coll, m, 0)
                .expect("cold build succeeded");
            assert_eq!(cold, warm, "{coll:?} m={m} cfg={cfg}: programs differ");
            let opts = ExecOpts::timing(han.flavor().p2p());
            let rc = execute(&mut machine, &cold, &opts);
            let rw = execute(&mut machine, &warm, &opts);
            assert_eq!(rc.makespan, rw.makespan, "{coll:?} m={m}: makespan");
            for i in 0..cold.len() {
                let op = OpId(i as u32);
                assert_eq!(
                    rc.finish(op),
                    rw.finish(op),
                    "{coll:?} m={m}: op {i} finish time"
                );
            }
            assert_eq!(rc.events, rw.events, "{coll:?} m={m}: event counts");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random two-level machines, configurations and size ladders: the
    /// template store never changes what a build produces.
    #[test]
    fn templated_builds_are_bit_identical(
        nodes in 1usize..4,
        ppn in 1usize..4,
        base in 1u64..5000,
        cfg in arb_config(),
    ) {
        let preset = mini(nodes, ppn);
        // An ascending ladder sharing low-order structure so some sizes
        // land in the same template class (exercising specialization) and
        // others don't (exercising probe/learn/unshareable paths).
        let sizes = [base, base + 1, base + 2, base * 2, base * 2 + 1];
        assert_store_matches_cold(&preset, cfg, &sizes);
    }

    /// Same guarantee on three-level (socketized) machines with a deep
    /// intra module override.
    #[test]
    fn templated_builds_match_on_three_level_machines(
        nodes in 1usize..3,
        ppn in 2usize..5,
        base in 1u64..3000,
        cfg in arb_config(),
        deep_solo in any::<bool>(),
    ) {
        let smod = if deep_solo { IntraModule::Solo } else { IntraModule::Sm };
        let preset = socketize(mini(nodes, ppn * 2), 2, 1.4);
        let cfg = cfg.with_deep(2, smod);
        let sizes = [base, base + 4, base * 3];
        assert_store_matches_cold(&preset, cfg, &sizes);
    }
}

/// Deterministic reuse check: sizes chosen inside one template class must
/// actually hit the specialization fast path, and the re-stamped programs
/// must execute identically to cold builds.
#[test]
fn template_reuse_fires_and_matches() {
    let preset = mini(4, 4);
    let cfg = HanConfig::default().with_fs(256 * 1024);
    let han = Han::with_config(cfg);
    let store = TemplateStore::new();
    let mut machine = Machine::from_preset(&preset);
    // All in one class for fs = 256 KB: 16 segments, and the remainder
    // segment spans the same number of 8 KB shared-memory fragments.
    let sizes = [
        (4 << 20) - 4096,
        (4 << 20) - 2048,
        4 << 20,
        (4 << 20) - 1024,
    ];
    for &m in &sizes {
        let cold = build_coll(&han, &preset, Coll::Bcast, m, 0).unwrap();
        let warm = store.build(&han, &preset, Coll::Bcast, m, 0).unwrap();
        assert_eq!(cold, warm, "m={m}");
        let opts = ExecOpts::timing(han.flavor().p2p());
        assert_eq!(
            execute(&mut machine, &cold, &opts).makespan,
            execute(&mut machine, &warm, &opts).makespan,
        );
    }
    let stats = store.stats();
    assert!(
        stats.hits >= 2,
        "sizes in one class must specialize, got {stats:?}"
    );
}
