//! Cross-crate integration: every MPI stack's broadcast delivers correct
//! data on every machine shape, and the performance relationships the
//! paper reports hold at mini scale.

use han::colls::stack::build_coll;
use han::mpi::{execute_seeded, BufRange};
use han::prelude::*;

fn check_bcast_delivery(stack: &dyn MpiStack, nodes: usize, ppn: usize, bytes: u64, root: usize) {
    let preset = mini(nodes, ppn);
    let n = nodes * ppn;
    let prog = build_coll(stack, &preset, Coll::Bcast, bytes, root).expect("bcast");
    let mut m = Machine::from_preset(&preset);
    let opts = ExecOpts::with_data(stack.flavor().p2p());
    let buf = BufRange::new(0, bytes);
    let payload: Vec<u8> = (0..bytes).map(|i| (i * 7 % 255) as u8).collect();
    let (report, mem) = execute_seeded(&mut m, &prog, &opts, |mm| mm.write(root, buf, &payload));
    assert!(report.makespan > Time::ZERO);
    for r in 0..n {
        assert_eq!(
            mem.read(r, buf),
            payload.as_slice(),
            "{} rank {r}/{n} bytes {bytes} root {root}",
            stack.name()
        );
    }
}

#[test]
fn all_stacks_deliver_small_and_large() {
    let han = Han::with_config(HanConfig::default().with_fs(4 * 1024));
    let stacks: Vec<Box<dyn MpiStack>> = vec![
        Box::new(han),
        Box::new(TunedOpenMpi),
        Box::new(VendorMpi::cray()),
        Box::new(VendorMpi::intel()),
        Box::new(VendorMpi::mvapich2()),
    ];
    for stack in &stacks {
        check_bcast_delivery(stack.as_ref(), 3, 4, 512, 0);
        check_bcast_delivery(stack.as_ref(), 3, 4, 64 * 1024, 0);
    }
}

#[test]
fn delivery_with_nontrivial_roots() {
    let han = Han::with_config(HanConfig::default().with_fs(1024));
    for root in [1, 5, 11] {
        check_bcast_delivery(&han, 3, 4, 10_000, root);
        check_bcast_delivery(&TunedOpenMpi, 3, 4, 10_000, root);
    }
}

#[test]
fn delivery_on_odd_shapes() {
    // Non-power-of-two node and rank counts, odd message sizes.
    let han = Han::with_config(HanConfig::default().with_fs(777));
    check_bcast_delivery(&han, 5, 3, 7_001, 7);
    check_bcast_delivery(&han, 1, 6, 999, 3); // single node
    check_bcast_delivery(&han, 6, 1, 999, 2); // single rank per node
}

#[test]
fn han_beats_tuned_across_the_size_range() {
    // The Fig. 10/12 headline at mini scale: HAN wins for both small and
    // large messages against the topology-oblivious default.
    let preset = mini(4, 8);
    for (bytes, fs, smod) in [
        (16 * 1024u64, 16 * 1024u64, IntraModule::Sm),
        (1 << 20, 128 * 1024, IntraModule::Sm),
        (16 << 20, 1 << 20, IntraModule::Solo),
    ] {
        let han = Han::with_config(HanConfig::default().with_fs(fs).with_intra(smod));
        let t_han = time_coll(&han, &preset, Coll::Bcast, bytes, 0).unwrap();
        let t_tuned = time_coll(&TunedOpenMpi, &preset, Coll::Bcast, bytes, 0).unwrap();
        assert!(t_han < t_tuned, "{bytes}B: HAN {t_han} vs tuned {t_tuned}");
    }
}

#[test]
fn cray_wins_small_han_wins_large() {
    // The Fig. 10 crossover: Cray MPI's cheaper P2P wins small messages;
    // HAN's pipelining wins large ones.
    let preset = mini(8, 8);
    let small_cfg = HanConfig::default().with_fs(8 * 1024);
    let large_cfg = HanConfig::default()
        .with_fs(1 << 20)
        .with_intra(IntraModule::Solo);
    let t_han_small = time_coll(
        &Han::with_config(small_cfg),
        &preset,
        Coll::Bcast,
        8 * 1024,
        0,
    )
    .unwrap();
    let t_cray_small = time_coll(&VendorMpi::cray(), &preset, Coll::Bcast, 8 * 1024, 0).unwrap();
    assert!(
        t_cray_small < t_han_small,
        "small: cray {t_cray_small} should beat HAN {t_han_small}"
    );
    let t_han_large = time_coll(
        &Han::with_config(large_cfg),
        &preset,
        Coll::Bcast,
        32 << 20,
        0,
    )
    .unwrap();
    let t_cray_large = time_coll(&VendorMpi::cray(), &preset, Coll::Bcast, 32 << 20, 0).unwrap();
    assert!(
        t_han_large < t_cray_large,
        "large: HAN {t_han_large} should beat cray {t_cray_large}"
    );
}

#[test]
fn deterministic_across_runs() {
    let preset = mini(3, 5);
    let han = Han::with_config(HanConfig::default());
    let a = time_coll(&han, &preset, Coll::Bcast, 3 << 20, 0).unwrap();
    let b = time_coll(&han, &preset, Coll::Bcast, 3 << 20, 0).unwrap();
    assert_eq!(a, b, "simulation must be bit-deterministic");
}
