//! Differential oracle for delta re-simulation: every candidate of a
//! reduced Fig. 8 sweep is simulated both from scratch and through the
//! checkpoint-replay path, on two- and three-level machines. Bit identity
//! is the contract — makespan, per-op finish times, event counts, and the
//! selected winners must be *equal*, not close.

use std::collections::HashMap;

use han::colls::stack::{build_coll, Coll, MpiStack};
use han::machine::{dgx_like, mini, mini3, Machine, MachinePreset};
use han::mpi::{execute, ExecOpts, Executor, Program, Recording, Report};
use han::prelude::{Han, HanConfig, InterAlg, InterModule, IntraModule};
use han::sim::Time;
use han::tuner::{structural_fingerprint, SearchSpace};
use proptest::prelude::*;

/// Simulate `prog` through the delta path: record a base on the first
/// sighting of its structure, replay on later ones, refresh on fallback.
/// Returns the full [`Report`] so callers can compare more than makespan.
fn delta_report(
    exec: &mut Executor,
    bases: &mut HashMap<u64, Recording>,
    machine: &mut Machine,
    prog: &Program,
    opts: &ExecOpts,
) -> Report {
    let fp = structural_fingerprint(prog);
    if let Some(base) = bases.get(&fp) {
        if let Some(rep) = exec.run_delta(machine, prog, opts, base) {
            return rep;
        }
    }
    let rec = exec.run_recorded(machine, prog, opts);
    let rep = rec.report().clone();
    bases.insert(fp, rec);
    rep
}

fn assert_reports_identical(full: &Report, delta: &Report, what: &str) {
    assert_eq!(full.makespan, delta.makespan, "{what}: makespan");
    assert_eq!(full.rank_finish, delta.rank_finish, "{what}: rank finishes");
    assert_eq!(
        full.op_finishes(),
        delta.op_finishes(),
        "{what}: op finishes"
    );
    assert_eq!(full.events, delta.events, "{what}: event count");
}

/// The reduced sweep grid: small enough to run in a debug test, wide
/// enough that candidates both share structures (delta hits) and diverge
/// (prefix replay + suffix re-simulation).
fn sweep_space() -> SearchSpace {
    let mut space = SearchSpace::standard();
    space.msg_sizes = vec![16 * 1024, 256 * 1024, 1 << 20];
    space.seg_sizes = vec![64 * 1024, 256 * 1024];
    space
}

#[test]
fn fig8_candidates_delta_vs_full_bit_identical() {
    for preset in [mini(2, 4), mini3(2, 2, 2), dgx_like(2, 4)] {
        run_preset(&preset);
    }
}

fn run_preset(preset: &MachinePreset) {
    let space = sweep_space();
    let mut machine = Machine::from_preset(preset);
    let mut exec = Executor::new();
    let mut bases: HashMap<u64, Recording> = HashMap::new();
    for coll in [Coll::Bcast, Coll::Allreduce] {
        for &m in &space.msg_sizes {
            let mut full_winner: Option<(usize, Time)> = None;
            let mut delta_winner: Option<(usize, Time)> = None;
            for (i, cfg) in space
                .configs_for(m, &preset.topology, false)
                .into_iter()
                .enumerate()
            {
                let han = Han::with_config(cfg);
                let prog = match build_coll(&han, preset, coll, m, 0) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                let opts = ExecOpts::timing(han.flavor().p2p());
                let full = execute(&mut machine, &prog, &opts);
                let delta = delta_report(&mut exec, &mut bases, &mut machine, &prog, &opts);
                let what = format!("{} {coll:?} m={m} cfg=[{cfg}]", preset.name);
                assert_reports_identical(&full, &delta, &what);
                if full_winner.map(|(_, t)| full.makespan < t).unwrap_or(true) {
                    full_winner = Some((i, full.makespan));
                }
                if delta_winner
                    .map(|(_, t)| delta.makespan < t)
                    .unwrap_or(true)
                {
                    delta_winner = Some((i, delta.makespan));
                }
            }
            assert_eq!(
                full_winner, delta_winner,
                "{} {coll:?} m={m}: winner diverged",
                preset.name
            );
        }
    }
}

/// One single-axis perturbation of a base config, mirroring how adjacent
/// sweep candidates differ.
fn perturb(cfg: &HanConfig, axis: u32) -> HanConfig {
    let mut p = *cfg;
    match axis % 5 {
        0 => p.fs *= 2,
        1 => p.ibs = Some(p.ibs.map_or(64 * 1024, |s| s * 2)),
        2 => p.irs = Some(p.irs.map_or(64 * 1024, |s| s * 2)),
        3 => {
            p.ibalg = if p.ibalg == InterAlg::Binomial {
                InterAlg::Chain
            } else {
                InterAlg::Binomial
            };
        }
        _ => {
            p.iralg = if p.iralg == InterAlg::Chain {
                InterAlg::Binomial
            } else {
                InterAlg::Chain
            };
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Record a base from a random config, then re-simulate a random
    /// single-axis perturbation of it through the delta path; the result
    /// must be bit-identical to a from-scratch run whether replay applies
    /// (same structure) or falls back (shape changed).
    #[test]
    fn single_axis_perturbation_bit_identical(
        coll_sel in 0u32..2,
        fs_exp in 14u32..20,
        axis in 0u32..5,
        m_exp in 14u32..21,
    ) {
        let preset = mini(2, 2);
        let coll = if coll_sel == 0 { Coll::Bcast } else { Coll::Allreduce };
        let m = 1u64 << m_exp;
        let base_cfg = HanConfig {
            fs: 1 << fs_exp,
            imod: InterModule::Adapt,
            smod: IntraModule::Sm,
            ..HanConfig::default()
        };
        let mut machine = Machine::from_preset(&preset);
        let mut exec = Executor::new();
        let mut bases = HashMap::new();
        for cfg in [base_cfg, perturb(&base_cfg, axis)] {
            let han = Han::with_config(cfg);
            let prog = match build_coll(&han, &preset, coll, m, 0) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let opts = ExecOpts::timing(han.flavor().p2p());
            let full = execute(&mut machine, &prog, &opts);
            let delta = delta_report(&mut exec, &mut bases, &mut machine, &prog, &opts);
            let what = format!("{coll:?} m={m} axis={axis} cfg=[{cfg}]");
            assert_reports_identical(&full, &delta, &what);
        }
    }
}
