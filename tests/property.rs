//! Property-based tests over the core invariants.
//!
//! Random machine shapes, message sizes, roots and configurations must
//! always (a) deliver/reduce correct data, (b) be deterministic, and
//! (c) respect basic cost monotonicities.

// Verification loops index several per-rank buffers by rank on purpose.
#![allow(clippy::needless_range_loop)]

use han::colls::stack::build_coll;
use han::mpi::{execute_seeded, BufRange};
use han::prelude::{
    mini, time_coll, Coll, Comm, DataType, ExecOpts, Flavor, Frontier, Han, HanConfig, InterAlg,
    InterModule, IntraModule, Machine, MpiStack, ProgramBuilder, ReduceOp, TunedOpenMpi,
};
use proptest::prelude::*;

fn arb_config() -> impl proptest::strategy::Strategy<Value = HanConfig> {
    (
        1u64..=4096,
        prop_oneof![Just(InterModule::Libnbc), Just(InterModule::Adapt)],
        prop_oneof![Just(IntraModule::Sm), Just(IntraModule::Solo)],
        prop_oneof![
            Just(InterAlg::Chain),
            Just(InterAlg::Binary),
            Just(InterAlg::Binomial)
        ],
    )
        .prop_map(|(fs, imod, smod, alg)| HanConfig {
            fs,
            imod,
            smod,
            ibalg: alg,
            iralg: alg,
            ibs: None,
            irs: None,
            deep: [None; han::core::MAX_DEEP],
            route: None,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// HAN bcast delivers the exact payload for arbitrary shapes, roots,
    /// sizes and configurations.
    #[test]
    fn han_bcast_always_delivers(
        nodes in 1usize..5,
        ppn in 1usize..5,
        bytes in 1u64..3000,
        root_seed in 0usize..100,
        cfg in arb_config(),
    ) {
        let preset = mini(nodes, ppn);
        let n = nodes * ppn;
        let root = root_seed % n;
        let stack = Han::with_config(cfg);
        let prog = build_coll(&stack, &preset, Coll::Bcast, bytes, root).unwrap();
        let mut m = Machine::from_preset(&preset);
        let buf = BufRange::new(0, bytes);
        let payload: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
        let (_, mem) = execute_seeded(
            &mut m,
            &prog,
            &ExecOpts::with_data(Flavor::OpenMpi.p2p()),
            |mm| mm.write(root, buf, &payload),
        );
        for r in 0..n {
            prop_assert_eq!(mem.read(r, buf), payload.as_slice());
        }
    }

    /// HAN allreduce computes the exact elementwise sum (i32, exact).
    #[test]
    fn han_allreduce_always_sums(
        nodes in 1usize..4,
        ppn in 1usize..4,
        nelem in 1usize..200,
        cfg in arb_config(),
    ) {
        let preset = mini(nodes, ppn);
        let n = nodes * ppn;
        let bytes = (nelem * 4) as u64;
        let comm = Comm::world(n);
        let mut b = ProgramBuilder::new(n);
        let bufs = b.alloc_all(bytes);
        let mut cx = han::colls::stack::BuildCtx::new(&mut b, &preset);
        let stack = Han::with_config(cfg);
        stack.allreduce(
            &mut cx,
            &comm,
            &bufs,
            ReduceOp::Sum,
            DataType::Int32,
            &Frontier::empty(n),
        );
        let prog = b.build();
        let mut m = Machine::from_preset(&preset);
        let bufs2 = bufs.clone();
        let (_, mem) = execute_seeded(
            &mut m,
            &prog,
            &ExecOpts::with_data(Flavor::OpenMpi.p2p()),
            |mm| {
                for r in 0..n {
                    let vals: Vec<u8> = (0..nelem)
                        .flat_map(|i| ((r * 31 + i) as i32).to_le_bytes())
                        .collect();
                    mm.write(r, bufs2[r], &vals);
                }
            },
        );
        let expect: Vec<u8> = (0..nelem)
            .flat_map(|i| {
                let s: i32 = (0..n).map(|r| (r * 31 + i) as i32).sum();
                s.to_le_bytes()
            })
            .collect();
        for r in 0..n {
            prop_assert_eq!(mem.read(r, bufs[r]), expect.as_slice());
        }
    }

    /// Determinism: two identical runs produce identical makespans.
    #[test]
    fn execution_is_deterministic(
        nodes in 1usize..4,
        ppn in 1usize..4,
        bytes in 1u64..100_000,
        cfg in arb_config(),
    ) {
        let preset = mini(nodes, ppn);
        let stack = Han::with_config(cfg);
        let a = time_coll(&stack, &preset, Coll::Bcast, bytes, 0).unwrap();
        let b = time_coll(&stack, &preset, Coll::Bcast, bytes, 0).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Cost grows (weakly) with message size, all else equal.
    #[test]
    fn cost_monotone_in_message_size(
        nodes in 2usize..4,
        ppn in 1usize..4,
        base in 64u64..32_768,
    ) {
        let preset = mini(nodes, ppn);
        let stack = Han::with_config(HanConfig::default().with_fs(16 * 1024));
        let t1 = time_coll(&stack, &preset, Coll::Bcast, base, 0).unwrap();
        let t2 = time_coll(&stack, &preset, Coll::Bcast, base * 4, 0).unwrap();
        prop_assert!(t2 >= t1, "4x message can't be cheaper: {} vs {}", t2, t1);
    }

    /// A heterogeneous twin whose per-level overrides restate the uniform
    /// derivation exactly is cost-identical for arbitrary shapes, sizes
    /// and configurations — the heterogeneous code path degenerates to
    /// the uniform model bit for bit.
    #[test]
    fn self_override_hetero_twin_is_cost_identical(
        nodes in 1usize..4,
        ppn in 1usize..5,
        bytes in 1u64..300_000,
        cfg in arb_config(),
    ) {
        let preset = mini(nodes, ppn);
        let lv = preset.level_params();
        let mut twin = preset;
        for k in 0..preset.topology.depth() {
            twin = twin.with_level_override(k, *lv.get(k));
        }
        prop_assert!(twin.is_heterogeneous());
        let stack = Han::with_config(cfg);
        for coll in [Coll::Bcast, Coll::Allreduce] {
            let a = time_coll(&stack, &preset, coll, bytes, 0).unwrap();
            let b = time_coll(&stack, &twin, coll, bytes, 0).unwrap();
            prop_assert_eq!(a, b, "{:?} diverged on the self-override twin", coll);
        }
    }

    /// The tuned baseline is correct for arbitrary sizes too.
    #[test]
    fn tuned_bcast_always_delivers(
        nodes in 1usize..4,
        ppn in 1usize..4,
        bytes in 1u64..600_000,
        root_seed in 0usize..16,
    ) {
        let preset = mini(nodes, ppn);
        let n = nodes * ppn;
        let root = root_seed % n;
        let prog = build_coll(&TunedOpenMpi, &preset, Coll::Bcast, bytes, root).unwrap();
        let mut m = Machine::from_preset(&preset);
        let buf = BufRange::new(0, bytes);
        let payload: Vec<u8> = (0..bytes).map(|i| (i % 253) as u8).collect();
        let (_, mem) = execute_seeded(
            &mut m,
            &prog,
            &ExecOpts::with_data(Flavor::OpenMpi.p2p()),
            |mm| mm.write(root, buf, &payload),
        );
        for r in 0..n {
            prop_assert_eq!(mem.read(r, buf), payload.as_slice());
        }
    }
}
