//! Cross-crate integration for the reduction-family collectives: data
//! correctness for allreduce/reduce across every stack and HAN config, and
//! the paper's qualitative performance relationships.

// Verification loops index several per-rank buffers by rank on purpose.
#![allow(clippy::needless_range_loop)]

use han::colls::stack::build_coll;
use han::mpi::{execute_seeded, BufRange};
use han::prelude::*;

fn as_i32(xs: &[i32]) -> Vec<u8> {
    xs.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn from_i32(b: &[u8]) -> Vec<i32> {
    b.chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn check_allreduce(stack: &dyn MpiStack, nodes: usize, ppn: usize, nelem: usize) {
    let preset = mini(nodes, ppn);
    let n = nodes * ppn;
    let bytes = (nelem * 4) as u64;
    let prog = build_coll(stack, &preset, Coll::Allreduce, bytes, 0).expect("allreduce");
    let mut m = Machine::from_preset(&preset);
    let opts = ExecOpts::with_data(stack.flavor().p2p());
    let buf = BufRange::new(0, bytes);
    let (_, mem) = execute_seeded(&mut m, &prog, &opts, |mm| {
        for r in 0..n {
            let vals: Vec<i32> = (0..nelem).map(|i| (r * 13 + i) as i32).collect();
            mm.write(r, buf, &as_i32(&vals));
        }
    });
    let expect: Vec<i32> = (0..nelem)
        .map(|i| (0..n).map(|r| (r * 13 + i) as i32).sum())
        .collect();
    for r in 0..n {
        assert_eq!(
            from_i32(mem.read(r, buf)),
            expect,
            "{} rank {r} ({nodes}x{ppn})",
            stack.name()
        );
    }
}

#[test]
fn allreduce_correct_on_all_stacks() {
    // Note: `build_coll` uses Float32 for Allreduce; use a HAN program with
    // explicit Int32 via stacks that take the dtype from the caller —
    // build_coll hardcodes Float32, so the checks here go through stacks
    // whose arithmetic is exact for small ints in f32 too. Use small
    // values so f32 sums stay exact.
    let han = Han::with_config(HanConfig::default().with_fs(64));
    check_allreduce(&han, 3, 3, 16);
    check_allreduce(&TunedOpenMpi, 3, 3, 16);
    check_allreduce(&VendorMpi::cray(), 3, 3, 16);
    check_allreduce(&VendorMpi::intel(), 2, 4, 8);
    check_allreduce(&VendorMpi::mvapich2(), 2, 4, 8);
}

#[test]
fn allreduce_correct_across_han_configs() {
    for (imod, smod, fs) in [
        (InterModule::Libnbc, IntraModule::Sm, 32u64),
        (InterModule::Adapt, IntraModule::Solo, 48),
        (InterModule::Adapt, IntraModule::Sm, 1 << 20),
    ] {
        let cfg = HanConfig {
            fs,
            imod,
            smod,
            ..HanConfig::default()
        };
        check_allreduce(&Han::with_config(cfg), 3, 2, 32);
    }
}

#[test]
fn reduce_gather_scatter_allgather_through_han() {
    use han::colls::stack::BuildCtx;
    let preset = mini(2, 3);
    let n = 6;
    let comm = Comm::world(n);
    let han = Han::with_config(HanConfig::default().with_fs(32));

    // Reduce
    let mut b = ProgramBuilder::new(n);
    let bufs = b.alloc_all(64);
    let mut cx = BuildCtx::new(&mut b, &preset);
    let deps = Frontier::empty(n);
    han.reduce(
        &mut cx,
        &comm,
        4,
        &bufs,
        ReduceOp::Max,
        DataType::Int32,
        &deps,
    )
    .expect("reduce");
    let prog = b.build();
    let mut m = Machine::from_preset(&preset);
    let bufs2 = bufs.clone();
    let (_, mem) = execute_seeded(
        &mut m,
        &prog,
        &ExecOpts::with_data(Flavor::OpenMpi.p2p()),
        |mm| {
            for r in 0..n {
                let vals: Vec<i32> = (0..16).map(|i| ((r as i32 * 7 + i) % 31) - 15).collect();
                mm.write(r, bufs2[r], &as_i32(&vals));
            }
        },
    );
    let expect: Vec<i32> = (0..16)
        .map(|i| {
            (0..n)
                .map(|r| ((r as i32 * 7 + i) % 31) - 15)
                .max()
                .unwrap()
        })
        .collect();
    assert_eq!(from_i32(mem.read(4, bufs[4])), expect, "reduce to root 4");

    // Gather + Scatter roundtrip
    let mut b = ProgramBuilder::new(n);
    let src: Vec<BufRange> = (0..n).map(|r| b.alloc(r, 8)).collect();
    let mid = b.alloc(2, 48);
    let dst: Vec<BufRange> = (0..n).map(|r| b.alloc(r, 8)).collect();
    let mut cx = BuildCtx::new(&mut b, &preset);
    let f = han
        .gather(&mut cx, &comm, 2, &src, mid, &Frontier::empty(n))
        .expect("gather");
    han.scatter(&mut cx, &comm, 2, mid, &dst, &f)
        .expect("scatter");
    let prog = b.build();
    let src2 = src.clone();
    let (_, mem) = execute_seeded(
        &mut m,
        &prog,
        &ExecOpts::with_data(Flavor::OpenMpi.p2p()),
        |mm| {
            for r in 0..n {
                mm.write(r, src2[r], &[(r * 3) as u8; 8]);
            }
        },
    );
    for r in 0..n {
        assert_eq!(
            mem.read(r, dst[r]),
            &[(r * 3) as u8; 8],
            "roundtrip rank {r}"
        );
    }

    // Allgather
    let block = 8u64;
    let mut b = ProgramBuilder::new(n);
    let bufs = b.alloc_all(block * n as u64);
    let mut cx = BuildCtx::new(&mut b, &preset);
    han.allgather(&mut cx, &comm, &bufs, block, &Frontier::empty(n))
        .expect("allgather");
    let prog = b.build();
    let bufs2 = bufs.clone();
    let (_, mem) = execute_seeded(
        &mut m,
        &prog,
        &ExecOpts::with_data(Flavor::OpenMpi.p2p()),
        |mm| {
            for r in 0..n {
                let mine = bufs2[r].slice(r as u64 * block, block);
                mm.write(r, mine, &[(r + 10) as u8; 8]);
            }
        },
    );
    let expect: Vec<u8> = (0..n).flat_map(|r| [(r + 10) as u8; 8]).collect();
    for r in 0..n {
        assert_eq!(
            mem.read(r, bufs[r]),
            expect.as_slice(),
            "allgather rank {r}"
        );
    }
}

#[test]
fn allreduce_small_message_gap_vs_vendors() {
    // Fig. 13/14: HAN loses small-message allreduce to vendor MPIs because
    // its tuner must pick Libnbc/SM (no AVX) there.
    let preset = mini(8, 8);
    let bytes = 8 * 1024;
    let han = Han::with_config(
        HanConfig::default()
            .with_fs(8 * 1024)
            .with_inter(InterModule::Libnbc, InterAlg::Binomial),
    );
    let t_han = time_coll(&han, &preset, Coll::Allreduce, bytes, 0).unwrap();
    let t_cray = time_coll(&VendorMpi::cray(), &preset, Coll::Allreduce, bytes, 0).unwrap();
    assert!(
        t_cray < t_han,
        "small allreduce: cray {t_cray} should beat HAN {t_han}"
    );
}

#[test]
fn allreduce_large_message_han_wins() {
    // HAN is autotuned in the paper; emulate that by taking its best
    // segment size. Fig. 13 reports only up to 1.12x over Cray MPI, so
    // require a win, however slim.
    let preset = mini(8, 8);
    let bytes = 32 << 20;
    let t_han = [512 * 1024u64, 1 << 20, 2 << 20, 4 << 20]
        .into_iter()
        .map(|fs| {
            let han = Han::with_config(
                HanConfig::default()
                    .with_fs(fs)
                    .with_intra(IntraModule::Solo),
            );
            time_coll(&han, &preset, Coll::Allreduce, bytes, 0).unwrap()
        })
        .min()
        .unwrap();
    for v in [VendorMpi::cray(), VendorMpi::intel()] {
        let t = time_coll(&v, &preset, Coll::Allreduce, bytes, 0).unwrap();
        assert!(
            t_han < t,
            "large allreduce: HAN {t_han} should beat {} {t}",
            v.name()
        );
    }
}
