//! Failure/perturbation injection: imbalanced process arrival.
//!
//! The paper's related work (Parsons & Pai [25]) motivates leader
//! selection under imbalanced process arrival times. Our collectives must
//! stay correct under arbitrary per-rank start skews, and their cost must
//! degrade gracefully (bounded by the skew, since the DAG just waits).

// Verification loops index several per-rank buffers by rank on purpose.
#![allow(clippy::needless_range_loop)]

use han::colls::stack::build_coll;
use han::mpi::{execute, execute_seeded, BufRange};
use han::prelude::*;
use han::sim::SimRng;

fn skewed_starts(n: usize, max_us: u64, seed: u64) -> Vec<Time> {
    let mut rng = SimRng::seeded(seed);
    (0..n).map(|_| Time::from_us(rng.u64(max_us + 1))).collect()
}

#[test]
fn bcast_correct_under_arrival_imbalance() {
    let preset = mini(3, 4);
    let n = 12;
    let han = Han::with_config(HanConfig::default().with_fs(4 * 1024));
    let prog = build_coll(&han, &preset, Coll::Bcast, 50_000, 0).unwrap();
    let mut m = Machine::from_preset(&preset);
    let buf = BufRange::new(0, 50_000);
    let payload: Vec<u8> = (0..50_000u64).map(|i| (i % 241) as u8).collect();
    for seed in [1, 2, 3] {
        let opts =
            ExecOpts::with_data(Flavor::OpenMpi.p2p()).with_skew(skewed_starts(n, 500, seed));
        let (_, mem) = execute_seeded(&mut m, &prog, &opts, |mm| mm.write(0, buf, &payload));
        for r in 0..n {
            assert_eq!(mem.read(r, buf), payload.as_slice(), "seed {seed} rank {r}");
        }
    }
}

#[test]
fn allreduce_correct_under_arrival_imbalance() {
    let preset = mini(2, 3);
    let n = 6;
    let comm = Comm::world(n);
    let han = Han::with_config(HanConfig::default().with_fs(256));
    let mut b = ProgramBuilder::new(n);
    let bufs = b.alloc_all(1024);
    let mut cx = han::colls::stack::BuildCtx::new(&mut b, &preset);
    han.allreduce(
        &mut cx,
        &comm,
        &bufs,
        ReduceOp::Sum,
        DataType::Int32,
        &Frontier::empty(n),
    );
    let prog = b.build();
    let mut m = Machine::from_preset(&preset);
    let opts = ExecOpts::with_data(Flavor::OpenMpi.p2p()).with_skew(skewed_starts(n, 1_000, 99));
    let bufs2 = bufs.clone();
    let (_, mem) = execute_seeded(&mut m, &prog, &opts, |mm| {
        for r in 0..n {
            let vals: Vec<u8> = (0..256)
                .flat_map(|i| ((r * 3 + i) as i32).to_le_bytes())
                .collect();
            mm.write(r, bufs2[r], &vals);
        }
    });
    let expect: Vec<u8> = (0..256)
        .flat_map(|i| {
            let s: i32 = (0..n).map(|r| (r * 3 + i) as i32).sum();
            s.to_le_bytes()
        })
        .collect();
    for r in 0..n {
        assert_eq!(mem.read(r, bufs[r]), expect.as_slice(), "rank {r}");
    }
}

#[test]
fn reduce_correct_under_arrival_imbalance() {
    // Rooted reduction under skew: only the root's buffer must hold the
    // final sum, and it must hold it for every skew pattern.
    let preset = mini(2, 3);
    let n = 6;
    let comm = Comm::world(n);
    let han = Han::with_config(HanConfig::default().with_fs(512));
    let mut b = ProgramBuilder::new(n);
    let bufs = b.alloc_all(1024);
    let mut cx = han::colls::stack::BuildCtx::new(&mut b, &preset);
    han.reduce(
        &mut cx,
        &comm,
        0,
        &bufs,
        ReduceOp::Sum,
        DataType::Int32,
        &Frontier::empty(n),
    )
    .unwrap();
    let prog = b.build();
    let mut m = Machine::from_preset(&preset);
    let expect: Vec<u8> = (0..256)
        .flat_map(|i| {
            let s: i32 = (0..n).map(|r| (r * 5 + i) as i32).sum();
            s.to_le_bytes()
        })
        .collect();
    for seed in [11, 12, 13] {
        let opts =
            ExecOpts::with_data(Flavor::OpenMpi.p2p()).with_skew(skewed_starts(n, 800, seed));
        let bufs2 = bufs.clone();
        let (_, mem) = execute_seeded(&mut m, &prog, &opts, |mm| {
            for r in 0..n {
                let vals: Vec<u8> = (0..256)
                    .flat_map(|i| ((r * 5 + i) as i32).to_le_bytes())
                    .collect();
                mm.write(r, bufs2[r], &vals);
            }
        });
        assert_eq!(mem.read(0, bufs[0]), expect.as_slice(), "seed {seed}");
    }
}

#[test]
fn barrier_waits_for_last_arrival_under_skew() {
    // A barrier's makespan is lower-bounded by the latest arrival (no rank
    // leaves before everyone entered) and degrades by at most the skew
    // plus a small multiple of the balanced cost — delayed ranks reshuffle
    // rendezvous handshakes on shared links, so the ideal additive bound
    // picks up protocol-level slack, but never a blowup.
    let preset = mini(2, 3);
    let n = 6;
    let comm = Comm::world(n);
    let han = Han::with_config(HanConfig::default());
    let mut b = ProgramBuilder::new(n);
    let mut cx = han::colls::stack::BuildCtx::new(&mut b, &preset);
    han.barrier(&mut cx, &comm, &Frontier::empty(n)).unwrap();
    let prog = b.build();
    let mut m = Machine::from_preset(&preset);
    let opts = ExecOpts::timing(Flavor::OpenMpi.p2p());
    let balanced = execute(&mut m, &prog, &opts).makespan;
    for seed in [21, 22, 23] {
        let skews = skewed_starts(n, 1_500, seed);
        let latest = *skews.iter().max().unwrap();
        let skewed = execute(&mut m, &prog, &opts.clone().with_skew(skews)).makespan;
        assert!(
            skewed >= latest,
            "seed {seed}: barrier finished at {skewed} before the last arrival {latest}"
        );
        let bound = latest + Time::from_ps(10 * balanced.as_ps());
        assert!(
            skewed <= bound,
            "seed {seed}: skewed barrier {skewed} exceeds skew {latest} + 10x balanced {balanced}"
        );
    }
}

#[test]
fn skew_degrades_cost_boundedly() {
    // Makespan under skew is at most (balanced makespan + max skew): the
    // DAG only ever waits for late ranks, it never livelocks.
    let preset = mini(3, 3);
    let han = Han::with_config(HanConfig::default().with_fs(64 * 1024));
    let prog = build_coll(&han, &preset, Coll::Bcast, 1 << 20, 0).unwrap();
    let mut m = Machine::from_preset(&preset);
    let opts = ExecOpts::timing(Flavor::OpenMpi.p2p());
    let balanced = execute(&mut m, &prog, &opts).makespan;
    let max_skew = Time::from_ms(2);
    let skews = skewed_starts(9, 2_000, 7);
    let skewed = execute(&mut m, &prog, &opts.clone().with_skew(skews.clone())).makespan;
    assert!(skewed >= *skews.iter().max().unwrap());
    assert!(
        skewed <= balanced + max_skew,
        "skewed {skewed} must be bounded by balanced {balanced} + skew {max_skew}"
    );
}

#[test]
fn late_root_delays_everyone() {
    // If the broadcast root arrives late, everyone waits; if a leaf is
    // late, only its own completion suffers — the asymmetry the paper's
    // dynamic-leader related work exploits.
    let preset = mini(3, 2);
    let n = 6;
    let han = Han::with_config(HanConfig::default().with_fs(16 * 1024));
    let prog = build_coll(&han, &preset, Coll::Bcast, 256 * 1024, 0).unwrap();
    let mut m = Machine::from_preset(&preset);
    let opts = ExecOpts::timing(Flavor::OpenMpi.p2p());

    let mut root_late = vec![Time::ZERO; n];
    root_late[0] = Time::from_ms(5);
    let t_root_late = execute(&mut m, &prog, &opts.clone().with_skew(root_late)).makespan;

    let mut leaf_late = vec![Time::ZERO; n];
    leaf_late[5] = Time::from_ms(5);
    let t_leaf_late = execute(&mut m, &prog, &opts.clone().with_skew(leaf_late)).makespan;

    assert!(t_root_late >= Time::from_ms(5));
    assert!(
        t_leaf_late < t_root_late,
        "a late leaf ({t_leaf_late}) must hurt less than a late root ({t_root_late})"
    );
}
