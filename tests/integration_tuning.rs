//! End-to-end autotuning integration: tune a machine, persist the table,
//! serve decisions through the HAN facade, and verify the tuned stack
//! outperforms untuned choices.

use han::prelude::*;
use han::tuner::search::achieved_latency;
use han::tuner::space::pow2_range;
use std::sync::Arc;

fn test_space() -> SearchSpace {
    SearchSpace {
        msg_sizes: pow2_range(4 * 1024, 8 << 20),
        seg_sizes: pow2_range(32 * 1024, 1 << 20),
        inter: vec![
            (InterModule::Libnbc, InterAlg::Binomial),
            (InterModule::Adapt, InterAlg::Binomial),
            (InterModule::Adapt, InterAlg::Chain),
        ],
        intra: vec![IntraModule::Sm, IntraModule::Solo],
    }
}

#[test]
fn tuned_table_round_trips_and_serves_han() {
    let preset = mini(4, 4);
    let result = tune(
        &preset,
        &test_space(),
        &[Coll::Bcast, Coll::Allreduce],
        Strategy::TaskBasedHeuristic,
    );
    // Persist and reload.
    let dir = std::env::temp_dir().join("han_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tuned.json");
    result.table.save(&path).unwrap();
    let table = LookupTable::load(&path).unwrap();
    assert_eq!(table.entries.len(), result.table.entries.len());

    // Drive HAN through the tuned decision source, including sizes never
    // sampled (decision function interpolates to the nearest sample).
    let han = Han::tuned(Arc::new(table));
    for bytes in [4 * 1024u64, 100_000, 3 << 20, 32 << 20] {
        let t = time_coll(&han, &preset, Coll::Bcast, bytes, 0).unwrap();
        assert!(t > Time::ZERO, "{bytes}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn tuned_beats_single_fixed_config_overall() {
    // A single fixed configuration cannot win everywhere; the tuned table
    // must be at least as good across the size range in aggregate.
    let preset = mini(4, 4);
    let result = tune(&preset, &test_space(), &[Coll::Bcast], Strategy::TaskBased);
    let fixed = Han::with_config(HanConfig::default().with_fs(64 * 1024));
    let mut tuned_total = 0f64;
    let mut fixed_total = 0f64;
    for &m in &test_space().msg_sizes {
        tuned_total += achieved_latency(&preset, &result.table, Coll::Bcast, m)
            .unwrap()
            .as_secs_f64();
        fixed_total += time_coll(&fixed, &preset, Coll::Bcast, m, 0)
            .unwrap()
            .as_secs_f64();
    }
    assert!(
        tuned_total <= fixed_total * 1.02,
        "tuned {tuned_total:.6}s vs fixed {fixed_total:.6}s"
    );
}

#[test]
fn tuned_config_switches_with_message_size() {
    // The decision table must actually vary: small messages pick SM and
    // small segments; large messages pick bigger segments (and usually
    // SOLO under the heuristics).
    let preset = mini(4, 4);
    let result = tune(
        &preset,
        &test_space(),
        &[Coll::Bcast],
        Strategy::TaskBasedHeuristic,
    );
    let small = result.table.nearest(Coll::Bcast, 4 * 1024).unwrap().cfg;
    let large = result.table.nearest(Coll::Bcast, 8 << 20).unwrap().cfg;
    assert!(small.fs <= large.fs, "small {small} vs large {large}");
    assert_ne!(small, large, "table must differentiate sizes");
}

#[test]
fn exhaustive_and_task_based_agree_on_winners() {
    // Fig. 9's claim: the task-based pick achieves (nearly) the exhaustive
    // best in most cases. Allow 25% slack per size, and require the
    // aggregate to be within 10%.
    let preset = mini(4, 4);
    let space = test_space();
    let ex = tune(&preset, &space, &[Coll::Bcast], Strategy::Exhaustive);
    let tk = tune(&preset, &space, &[Coll::Bcast], Strategy::TaskBased);
    let mut ex_total = 0f64;
    let mut tk_total = 0f64;
    for &m in &space.msg_sizes {
        let best = achieved_latency(&preset, &ex.table, Coll::Bcast, m).unwrap();
        let got = achieved_latency(&preset, &tk.table, Coll::Bcast, m).unwrap();
        assert!(
            got.as_ps() as f64 <= best.as_ps() as f64 * 1.25,
            "m={m}: task pick {got} vs best {best}"
        );
        ex_total += best.as_secs_f64();
        tk_total += got.as_secs_f64();
    }
    assert!(
        tk_total <= ex_total * 1.10,
        "{tk_total:.6} vs {ex_total:.6}"
    );
}

#[test]
fn heuristic_tuning_is_cheaper_but_no_better() {
    let preset = mini(4, 4);
    let space = test_space();
    let plain = tune(&preset, &space, &[Coll::Bcast], Strategy::TaskBased);
    let heur = tune(
        &preset,
        &space,
        &[Coll::Bcast],
        Strategy::TaskBasedHeuristic,
    );
    assert!(heur.tuning_time <= plain.tuning_time);
    assert!(heur.searches <= plain.searches);
}
