//! The N-level refactor's non-negotiable invariant, pinned.
//!
//! `han_core::classic` keeps the pre-generalization two-level builders
//! verbatim as regression oracles. Every two-level machine must produce
//! **bit-identical** programs (op counts, event counts) and virtual times
//! through the generalized recursive path — config by config, preset by
//! preset — and the tuner must pick the same winners at the same costs.
//! A three-level machine must then actually pipeline: segments of
//! adjacent hierarchy levels must overlap in virtual time.

use han::colls::stack::{build_coll, BuildCtx};
use han::core::allreduce::build_allreduce;
use han::core::bcast::build_bcast;
use han::core::{classic, extend};
use han::mpi::{execute, trace_execution, BufRange, OpKind, Program};
use han::prelude::*;
use han::tuner::{tune, SearchSpace, Strategy};

/// The configuration corners that exercise every module/algorithm choice.
fn corner_configs() -> Vec<HanConfig> {
    let mut cfgs = vec![HanConfig::default()];
    for fs in [4 * 1024u64, 64 * 1024, 1 << 20] {
        for (imod, alg) in [
            (InterModule::Libnbc, InterAlg::Binomial),
            (InterModule::Adapt, InterAlg::Chain),
            (InterModule::Adapt, InterAlg::Binary),
        ] {
            for smod in [IntraModule::Sm, IntraModule::Solo] {
                let mut c = HanConfig::default().with_fs(fs).with_intra(smod);
                c.imod = imod;
                c.ibalg = alg;
                c.iralg = alg;
                cfgs.push(c);
            }
        }
    }
    cfgs
}

fn two_level_presets() -> Vec<MachinePreset> {
    vec![
        mini(4, 4),
        mini(3, 5),
        mini(1, 6),
        mini(6, 1),
        shaheen2_ppn(4, 8),
        stampede2_ppn(3, 4),
    ]
}

/// Run one builder closure to completion; return (makespan, events, ops).
fn run_build<F>(preset: &MachinePreset, bytes: u64, f: F) -> (Time, u64, usize)
where
    F: FnOnce(&mut BuildCtx, &Comm, &[BufRange]),
{
    let n = preset.topology.world_size();
    let comm = Comm::world(n);
    let mut b = ProgramBuilder::new(n);
    let bufs = b.alloc_all(bytes);
    let mut cx = BuildCtx::new(&mut b, preset);
    f(&mut cx, &comm, &bufs);
    let prog = b.build();
    let mut m = Machine::from_preset(preset);
    let report = execute(&mut m, &prog, &ExecOpts::timing(Flavor::OpenMpi.p2p()));
    (report.makespan, report.events, prog.ops.len())
}

#[test]
fn two_level_bcast_is_bit_identical_to_classic() {
    for preset in two_level_presets() {
        let n = preset.topology.world_size();
        for cfg in corner_configs() {
            for (bytes, root) in [(64 * 1024u64, 0usize), (2 << 20, (n - 1) / 2)] {
                let new = run_build(&preset, bytes, |cx, comm, bufs| {
                    build_bcast(cx, &cfg, comm, root, bufs, &Frontier::empty(n));
                });
                let old = run_build(&preset, bytes, |cx, comm, bufs| {
                    classic::build_bcast(cx, &cfg, comm, root, bufs, &Frontier::empty(n));
                });
                assert_eq!(
                    new, old,
                    "{} bcast {bytes}B root {root} {cfg}: (makespan, events, ops) diverged",
                    preset.name
                );
            }
        }
    }
}

#[test]
fn two_level_allreduce_is_bit_identical_to_classic() {
    for preset in two_level_presets() {
        let n = preset.topology.world_size();
        for cfg in corner_configs() {
            for bytes in [64 * 1024u64, 2 << 20] {
                let new = run_build(&preset, bytes, |cx, comm, bufs| {
                    build_allreduce(
                        cx,
                        &cfg,
                        comm,
                        bufs,
                        ReduceOp::Sum,
                        DataType::Float32,
                        &Frontier::empty(n),
                    );
                });
                let old = run_build(&preset, bytes, |cx, comm, bufs| {
                    classic::build_allreduce(
                        cx,
                        &cfg,
                        comm,
                        bufs,
                        ReduceOp::Sum,
                        DataType::Float32,
                        &Frontier::empty(n),
                    );
                });
                assert_eq!(
                    new, old,
                    "{} allreduce {bytes}B {cfg}: (makespan, events, ops) diverged",
                    preset.name
                );
            }
        }
    }
}

#[test]
fn two_level_extended_collectives_match_classic() {
    let cfg = HanConfig::default().with_fs(64 * 1024);
    for preset in [mini(3, 4), shaheen2_ppn(2, 6)] {
        let n = preset.topology.world_size();
        let bytes = 256 * 1024u64;

        let new = run_build(&preset, bytes, |cx, comm, bufs| {
            extend::build_reduce(
                cx,
                &cfg,
                comm,
                1,
                bufs,
                ReduceOp::Sum,
                DataType::Float32,
                &Frontier::empty(n),
            );
        });
        let old = run_build(&preset, bytes, |cx, comm, bufs| {
            classic::build_reduce(
                cx,
                &cfg,
                comm,
                1,
                bufs,
                ReduceOp::Sum,
                DataType::Float32,
                &Frontier::empty(n),
            );
        });
        assert_eq!(new, old, "{} reduce diverged", preset.name);

        let block = 4 * 1024u64;
        let new = run_build(&preset, block * n as u64, |cx, comm, bufs| {
            extend::build_allgather(cx, &cfg, comm, bufs, block, &Frontier::empty(n));
        });
        let old = run_build(&preset, block * n as u64, |cx, comm, bufs| {
            classic::build_allgather(cx, &cfg, comm, bufs, block, &Frontier::empty(n));
        });
        assert_eq!(new, old, "{} allgather diverged", preset.name);

        let new = run_build(&preset, 64, |cx, comm, _| {
            extend::build_barrier(cx, comm, &Frontier::empty(n));
        });
        let old = run_build(&preset, 64, |cx, comm, _| {
            classic::build_barrier(cx, comm, &Frontier::empty(n));
        });
        assert_eq!(new, old, "{} barrier diverged", preset.name);
    }
}

fn tiny_space() -> SearchSpace {
    SearchSpace {
        msg_sizes: vec![64 * 1024, 1 << 20, 8 << 20],
        seg_sizes: vec![32 * 1024, 256 * 1024, 1 << 20],
        inter: vec![
            (InterModule::Libnbc, InterAlg::Binomial),
            (InterModule::Adapt, InterAlg::Chain),
        ],
        intra: vec![IntraModule::Sm, IntraModule::Solo],
    }
}

/// Virtual latency of `coll` under `cfg` through the **classic** builders.
fn classic_time(preset: &MachinePreset, cfg: &HanConfig, coll: Coll, bytes: u64) -> Time {
    let n = preset.topology.world_size();
    let (t, _, _) = run_build(preset, bytes, |cx, comm, bufs| match coll {
        Coll::Bcast => {
            classic::build_bcast(cx, cfg, comm, 0, bufs, &Frontier::empty(n));
        }
        Coll::Allreduce => {
            classic::build_allreduce(
                cx,
                cfg,
                comm,
                bufs,
                ReduceOp::Sum,
                DataType::Float32,
                &Frontier::empty(n),
            );
        }
        other => panic!("no classic oracle for {other:?}"),
    });
    t
}

#[test]
fn two_level_tuned_winners_match_classic_argmin() {
    // The exhaustive tuner sweeps the generalized builders; the winner it
    // records for every (coll, size) must cost exactly what the classic
    // two-level oracle says, and no classic-timed candidate may beat it.
    let preset = mini(4, 4);
    let space = tiny_space();
    let colls = [Coll::Bcast, Coll::Allreduce];
    let result = tune(&preset, &space, &colls, Strategy::Exhaustive);
    assert!(result.skipped.is_empty(), "nothing should be skipped");
    for coll in colls {
        for m in space.msg_sizes.clone() {
            let entry = result.table.get(coll, m).expect("tuned entry");
            let winner_t = classic_time(&preset, &entry.cfg, coll, m);
            assert_eq!(
                winner_t.as_ps(),
                entry.cost_ps,
                "{coll:?}@{m}: recorded cost must match the classic oracle"
            );
            let best = space
                .configs_for(m, &preset.topology, false)
                .iter()
                .map(|c| classic_time(&preset, c, coll, m))
                .min()
                .expect("non-empty space");
            assert_eq!(
                winner_t, best,
                "{coll:?}@{m}: tuned winner must achieve the classic-oracle optimum"
            );
        }
    }
}

/// Highest level at which two world ranks are co-located: `None` for an
/// inter-node edge, `Some(k)` when they share the level-`k` group but not
/// the level-`k+1` one.
fn edge_level(topo: &Topology, a: usize, b: usize) -> usize {
    let mut level = 0;
    for k in 0..topo.depth() - 1 {
        if topo.same_group(a, b, k) {
            level = k + 1;
        } else {
            break;
        }
    }
    level
}

/// Classify every data-moving span by the hierarchy level its edge crosses
/// (0 = inter-node, `depth-1` = innermost shared-memory domain).
fn spans_by_level(
    topo: &Topology,
    prog: &Program,
    spans: &[han::mpi::Span],
) -> Vec<Vec<(Time, Time)>> {
    let mut by_level = vec![Vec::new(); topo.depth()];
    for (i, op) in prog.ops.iter().enumerate() {
        let edge = match &op.kind {
            OpKind::CrossCopy { from, .. } | OpKind::ReduceFrom { from, .. } => {
                Some((op.rank as usize, *from as usize))
            }
            OpKind::Send { msg } | OpKind::Recv { msg } => {
                let meta = &prog.msgs[msg.0 as usize];
                Some((meta.src as usize, meta.dst as usize))
            }
            _ => None,
        };
        if let Some((a, b)) = edge {
            let span = &spans[i];
            if span.end > span.start {
                by_level[edge_level(topo, a, b)].push((span.start, span.end));
            }
        }
    }
    by_level
}

fn overlaps(xs: &[(Time, Time)], ys: &[(Time, Time)]) -> bool {
    xs.iter()
        .any(|&(s1, e1)| ys.iter().any(|&(s2, e2)| s1 < e2 && s2 < e1))
}

#[test]
fn three_level_segments_overlap_on_adjacent_level_pairs() {
    // A 2-node × 2-socket × 4-core machine, 8 segments: the recursive
    // pipeline must keep traffic in flight at *every* adjacent level pair
    // simultaneously — inter-node with cross-socket, and cross-socket with
    // intra-socket.
    let preset = mini3(2, 2, 4);
    let topo = preset.topology;
    assert_eq!(topo.depth(), 3);
    let n = topo.world_size();
    let han = Han::with_config(HanConfig::default().with_fs(128 * 1024));
    for coll in [Coll::Bcast, Coll::Allreduce] {
        let prog = build_coll(&han, &preset, coll, 1 << 20, 0).expect("supported");
        let mut m = Machine::from_preset(&preset);
        let (_, trace) = trace_execution(&mut m, &prog, &ExecOpts::timing(Flavor::OpenMpi.p2p()));
        let by_level = spans_by_level(&topo, &prog, &trace.spans);
        for k in 0..topo.depth() - 1 {
            assert!(
                !by_level[k].is_empty(),
                "{coll:?}: no traffic crossed level {k} on {n} ranks"
            );
            assert!(
                overlaps(&by_level[k], &by_level[k + 1]),
                "{coll:?}: levels {k} and {} never overlap — the pipeline \
                 serialized across that boundary",
                k + 1
            );
        }
    }
}

/// A heterogeneous twin of `preset`: every level's parameters pinned via
/// `level_overrides`, with values restating the uniform derivation
/// *exactly* (same f64s, launch zero). The twin takes the heterogeneous
/// code paths everywhere — `is_heterogeneous()` is true and its serde form
/// carries `level_overrides` — yet must be indistinguishable in cost.
fn self_override(preset: &MachinePreset) -> MachinePreset {
    let lv = preset.level_params();
    let mut twin = *preset;
    for k in 0..preset.topology.depth() {
        twin = twin.with_level_override(k, *lv.get(k));
    }
    assert!(twin.is_heterogeneous());
    twin
}

#[test]
fn self_override_hetero_machine_is_bit_identical() {
    // Same programs, same makespans, same event counts, and the same
    // per-op finish times — the heterogeneous model with all-identical
    // level params is the uniform model, bit for bit.
    for preset in [mini(4, 4), mini(1, 6), mini3(2, 2, 4)] {
        let twin = self_override(&preset);
        for cfg in corner_configs() {
            let stack = Han::with_config(cfg);
            for coll in [Coll::Bcast, Coll::Allreduce, Coll::Reduce] {
                for bytes in [64 * 1024u64, 2 << 20] {
                    let pa = build_coll(&stack, &preset, coll, bytes, 0).expect("supported");
                    let pb = build_coll(&stack, &twin, coll, bytes, 0).expect("supported");
                    assert_eq!(
                        pa.ops.len(),
                        pb.ops.len(),
                        "{} {coll:?} {bytes}B {cfg}: op counts diverged",
                        preset.name
                    );
                    let opts = ExecOpts::timing(Flavor::OpenMpi.p2p());
                    let mut ma = Machine::from_preset(&preset);
                    let (ra, ta) = trace_execution(&mut ma, &pa, &opts);
                    let mut mb = Machine::from_preset(&twin);
                    let (rb, tb) = trace_execution(&mut mb, &pb, &opts);
                    assert_eq!(
                        (ra.makespan, ra.events),
                        (rb.makespan, rb.events),
                        "{} {coll:?} {bytes}B {cfg}: (makespan, events) diverged",
                        preset.name
                    );
                    for (i, (a, b)) in ta.spans.iter().zip(&tb.spans).enumerate() {
                        assert_eq!(
                            (a.start, a.end),
                            (b.start, b.end),
                            "{} {coll:?} {bytes}B {cfg}: op {i} ({}) finish diverged",
                            preset.name,
                            a.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn self_override_hetero_machine_tunes_identically() {
    // The whole tuner pipeline — candidate enumeration, analytic bounds,
    // pruning, cost measurement — must pick the same winners at the same
    // recorded costs on the self-override twin.
    let space = tiny_space();
    let colls = [Coll::Bcast, Coll::Allreduce];
    for preset in [mini(4, 4), mini3(2, 2, 2)] {
        let twin = self_override(&preset);
        for strategy in [Strategy::Exhaustive, Strategy::TaskBasedHeuristic] {
            let a = tune(&preset, &space, &colls, strategy);
            let b = tune(&twin, &space, &colls, strategy);
            for coll in colls {
                for &m in &space.msg_sizes {
                    let ea = a.table.get(coll, m).expect("tuned entry");
                    let eb = b.table.get(coll, m).expect("tuned entry");
                    assert_eq!(
                        (ea.cfg, ea.cost_ps),
                        (eb.cfg, eb.cost_ps),
                        "{} {strategy:?} {coll:?}@{m}: tuned winner diverged",
                        preset.name
                    );
                }
            }
        }
    }
}

#[test]
fn three_level_tunes_end_to_end_with_per_level_configs() {
    let preset = mini3(2, 2, 2);
    let topo = preset.topology;
    let space = tiny_space();

    // The generalized space must actually offer per-level overrides on a
    // three-level machine.
    let deep_cfgs = space.configs_for(1 << 20, &topo, false);
    let flat_cfgs = space.configs(1 << 20, topo.nodes(), false);
    assert!(
        deep_cfgs.len() > flat_cfgs.len(),
        "deep space ({}) must extend the flat space ({})",
        deep_cfgs.len(),
        flat_cfgs.len()
    );
    assert!(
        deep_cfgs.iter().any(|c| c.deep.iter().any(Option::is_some)),
        "some candidates must override the socket-level module"
    );

    let colls = [Coll::Bcast, Coll::Allreduce];
    for strategy in [Strategy::Exhaustive, Strategy::TaskBasedHeuristic] {
        let result = tune(&preset, &space, &colls, strategy);
        assert!(result.skipped.is_empty(), "{strategy:?} skipped work");
        assert_eq!(result.table.levels, topo.levels(), "{strategy:?} levels");
        for coll in colls {
            for &m in &space.msg_sizes {
                let entry = result.table.get(coll, m).expect("tuned entry");
                // Every level below the leaders answers a module query.
                for level in 1..topo.depth() {
                    let _ = entry.cfg.smod_at(level);
                }
                assert!(entry.cost_ps > 0, "{strategy:?} {coll:?}@{m}");
            }
        }
    }

    // Decisions served through the HAN facade still execute end-to-end.
    let result = tune(&preset, &space, &colls, Strategy::Exhaustive);
    let han = Han::tuned(std::sync::Arc::new(result.table));
    for coll in colls {
        let t = time_coll(&han, &preset, coll, 2 << 20, 0).expect("supported");
        assert!(t > Time::ZERO);
    }
}
