//! Golden-file regression for the Fig. 8 tuning sweep: the winner table
//! of a reduced-scale exhaustive (bound-pruned) sweep on the mini tuning
//! machine is pinned in `tests/golden/fig8_winners.json`. Any change to
//! the simulator, the builders, or the tuner that shifts a winner — or
//! its cost by more than a float-tolerance — fails here with a diff.
//!
//! To re-bless after an *intentional* change:
//!
//! ```text
//! HAN_BLESS=1 cargo test --test golden_fig8
//! ```

use han::prelude::*;
use han::tuner::{tune_with_opts, TuneOpts};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// One pinned winner row. The config is pinned by its display form —
/// stable, diff-friendly, and exactly as reports print it.
#[derive(Debug, Serialize, Deserialize)]
struct GoldenRow {
    coll: String,
    m: u64,
    cfg: String,
    cost_ps: u64,
}

/// Cost drift tolerance: winners must match exactly, costs within 0.01%.
/// The simulator is deterministic, so today this is equality — the slack
/// only forgives representation-level churn (e.g. rounding inside a
/// refactored cost path), never a different winner.
const COST_RTOL: f64 = 1e-4;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fig8_winners.json")
}

/// The reduced-scale Fig. 8 sweep: the mini tuning machine (as
/// `repro --scale mini` uses) over a trimmed message/segment grid with
/// the full algorithm space.
fn sweep_winners() -> Vec<GoldenRow> {
    let preset = shaheen2_ppn(8, 4);
    let mut space = SearchSpace::standard();
    space.msg_sizes = vec![4 * 1024, 64 * 1024, 1 << 20];
    space.seg_sizes = vec![16 * 1024, 128 * 1024, 512 * 1024];
    let r = tune_with_opts(
        &preset,
        &space,
        &[Coll::Bcast, Coll::Allreduce],
        Strategy::Exhaustive,
        None,
        TuneOpts {
            prune: true,
            delta: true,
        },
    );
    assert!(r.skipped.is_empty(), "unexpected skips: {:?}", r.skipped);
    r.table
        .entries
        .iter()
        .map(|e| GoldenRow {
            coll: e.coll.clone(),
            m: e.m,
            cfg: e.cfg.to_string(),
            cost_ps: e.cost_ps,
        })
        .collect()
}

#[test]
fn fig8_winner_table_matches_golden() {
    let got = sweep_winners();
    let path = golden_path();
    if std::env::var("HAN_BLESS").is_ok() {
        let json = serde_json::to_string_pretty(&got).unwrap();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, json + "\n").unwrap();
        println!("blessed {} rows into {}", got.len(), path.display());
        return;
    }
    let golden: Vec<GoldenRow> =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run HAN_BLESS=1",
                path.display()
            )
        }))
        .expect("golden file parses");

    assert_eq!(
        got.len(),
        golden.len(),
        "winner table size changed (got {}, golden {})",
        got.len(),
        golden.len()
    );
    for (g, want) in got.iter().zip(&golden) {
        assert_eq!(
            (g.coll.as_str(), g.m),
            (want.coll.as_str(), want.m),
            "table rows reordered"
        );
        assert_eq!(
            g.cfg, want.cfg,
            "winner changed for {} m={}: got [{}], golden [{}]",
            g.coll, g.m, g.cfg, want.cfg
        );
        let rel = (g.cost_ps as f64 - want.cost_ps as f64).abs() / (want.cost_ps.max(1) as f64);
        assert!(
            rel <= COST_RTOL,
            "cost drifted for {} m={}: got {} ps, golden {} ps (rel {rel:.2e})",
            g.coll,
            g.m,
            g.cost_ps,
            want.cost_ps
        );
    }
}
