//! # HAN — a Hierarchical AutotuNed Collective Communication Framework
//!
//! A full-system Rust reproduction of *"HAN: a Hierarchical AutotuNed
//! Collective Communication Framework"* (Luo et al., IEEE CLUSTER 2020),
//! including every substrate the paper depends on: a deterministic
//! discrete-event cluster simulator, an MPI-like runtime, the collective
//! submodules HAN composes (Libnbc, ADAPT, SM, SOLO), the `tuned` Open MPI
//! baseline and vendor-MPI stand-ins, the task-based autotuner, and the
//! evaluation applications (ASP, a Horovod-style trainer).
//!
//! This crate is the facade: it re-exports the layered crates under one
//! namespace. See `README.md` for the architecture and `DESIGN.md` for the
//! paper-to-module mapping.
//!
//! ## Quickstart
//!
//! ```
//! use han::prelude::*;
//!
//! // A 4-node × 8-rank simulated cluster.
//! let preset = machine::mini(4, 8);
//!
//! // HAN with a fixed configuration vs default Open MPI.
//! let hcfg = HanConfig::default().with_fs(128 * 1024);
//! let t_han = time_coll(&Han::with_config(hcfg), &preset, Coll::Bcast, 1 << 20, 0).unwrap();
//! let t_tuned = time_coll(&TunedOpenMpi, &preset, Coll::Bcast, 1 << 20, 0).unwrap();
//! assert!(t_han < t_tuned);
//! ```

pub use han_apps as apps;
pub use han_colls as colls;
pub use han_core as core;
pub use han_decide as decide;
pub use han_machine as machine;
pub use han_mpi as mpi;
pub use han_serve as serve;
pub use han_sim as sim;
pub use han_synth as synth;
pub use han_tuner as tuner;
pub use han_verify as verify;

/// The items most programs need.
pub mod prelude {
    pub use han_colls::stack::{
        build_coll, time_coll, time_coll_on, BuildCtx, Coll, MpiStack, Unsupported,
    };
    pub use han_colls::{
        Adapt, Frontier, InterAlg, InterModule, IntraModule, Libnbc, Sm, Solo, TreeShape,
        TunedOpenMpi, VendorMpi,
    };
    pub use han_core::{ConfigSource, Han, HanConfig, MAX_DEEP};
    pub use han_decide::{preset_fingerprint, DecisionTree, LookupTable, Resolution};
    pub use han_machine::{
        self as machine, mini, mini3, shaheen2, shaheen2_ppn, shaheen2_sockets, socketize,
        stampede2, stampede2_ppn, Flavor, Machine, MachinePreset, Topology,
    };
    pub use han_mpi::{Comm, DataType, ExecMode, ExecOpts, ProgramBuilder, ReduceOp};
    pub use han_serve::{Client, Query, TableStore};
    pub use han_sim::Time;
    pub use han_synth::{synthesize, SynthOpts, SynthResult};
    pub use han_tuner::{tune, SearchSpace, Strategy, TaskBench};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn facade_reexports_work() {
        let preset = mini(2, 2);
        let t = time_coll(
            &Han::with_config(HanConfig::default()),
            &preset,
            Coll::Bcast,
            4096,
            0,
        )
        .unwrap();
        assert!(t > Time::ZERO);
    }
}
